#include <gtest/gtest.h>

#include "search/postings.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Postings, RoundTrip)
{
    PostingListBuilder b;
    b.add(5, 2);
    b.add(9, 1);
    b.add(1000, 7);
    const auto bytes = b.bytes();
    PostingCursor c(bytes.data(), bytes.data() + bytes.size(), 3);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.doc(), 5u);
    EXPECT_EQ(c.tf(), 2u);
    c.next();
    EXPECT_EQ(c.doc(), 9u);
    c.next();
    EXPECT_EQ(c.doc(), 1000u);
    EXPECT_EQ(c.tf(), 7u);
    c.next();
    EXPECT_FALSE(c.valid());
}

TEST(Postings, EmptyList)
{
    PostingListBuilder b;
    const auto bytes = b.bytes();
    PostingCursor c(bytes.data(), bytes.data() + bytes.size(), 0);
    EXPECT_FALSE(c.valid());
}

TEST(Postings, FirstDocZero)
{
    PostingListBuilder b;
    b.add(0, 3);
    b.add(1, 4);
    const auto bytes = b.bytes();
    PostingCursor c(bytes.data(), bytes.data() + bytes.size(), 2);
    EXPECT_EQ(c.doc(), 0u);
    c.next();
    EXPECT_EQ(c.doc(), 1u);
}

TEST(Postings, SeekForward)
{
    PostingListBuilder b;
    for (DocId d = 0; d < 1000; d += 10)
        b.add(d, 1);
    const auto bytes = b.bytes();
    PostingCursor c(bytes.data(), bytes.data() + bytes.size(), 100);
    c.seek(500);
    EXPECT_EQ(c.doc(), 500u);
    c.seek(505); // between postings -> lands on next
    EXPECT_EQ(c.doc(), 510u);
    c.seek(505); // seek backwards is a no-op (already past)
    EXPECT_EQ(c.doc(), 510u);
    c.seek(100000); // past the end
    EXPECT_FALSE(c.valid());
}

TEST(Postings, LargeRandomRoundTrip)
{
    Rng rng(7);
    PostingListBuilder b;
    std::vector<Posting> ref;
    DocId doc = 0;
    for (int i = 0; i < 50000; ++i) {
        doc += 1 + static_cast<DocId>(rng.nextRange(1000));
        const uint32_t tf = 1 + static_cast<uint32_t>(rng.nextRange(20));
        b.add(doc, tf);
        ref.push_back({doc, tf});
    }
    const auto bytes = b.bytes();
    PostingCursor c(bytes.data(), bytes.data() + bytes.size(),
                    static_cast<uint32_t>(ref.size()));
    for (const auto &p : ref) {
        ASSERT_TRUE(c.valid());
        ASSERT_EQ(c.doc(), p.doc);
        ASSERT_EQ(c.tf(), p.tf);
        c.next();
    }
    EXPECT_FALSE(c.valid());
    EXPECT_EQ(c.bytesConsumed(bytes.data()), bytes.size());
}

TEST(Postings, DeltaEncodingIsCompact)
{
    // Dense postings (small gaps) should take ~2 bytes per entry.
    PostingListBuilder b;
    for (DocId d = 0; d < 10000; ++d)
        b.add(d, 1);
    EXPECT_LE(b.bytes().size(), 10000u * 2);
}

} // namespace
} // namespace wsearch
