#include <gtest/gtest.h>

#include <vector>

#include "search/varint.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Varint, SingleByteValues)
{
    std::vector<uint8_t> buf;
    EXPECT_EQ(varintEncode(0, buf), 1u);
    EXPECT_EQ(varintEncode(127, buf), 1u);
    EXPECT_EQ(buf.size(), 2u);
    const uint8_t *p = buf.data();
    EXPECT_EQ(varintDecode(p, buf.data() + buf.size()), 0u);
    EXPECT_EQ(varintDecode(p, buf.data() + buf.size()), 127u);
}

TEST(Varint, MultiByteBoundaries)
{
    for (uint64_t v : {128ull, 16383ull, 16384ull, 2097151ull,
                       (1ull << 35), ~0ull}) {
        std::vector<uint8_t> buf;
        const uint32_t n = varintEncode(v, buf);
        EXPECT_EQ(n, varintSize(v));
        EXPECT_EQ(buf.size(), n);
        const uint8_t *p = buf.data();
        EXPECT_EQ(varintDecode(p, buf.data() + buf.size()), v);
        EXPECT_EQ(p, buf.data() + buf.size());
    }
}

TEST(Varint, SizeFormula)
{
    EXPECT_EQ(varintSize(0), 1u);
    EXPECT_EQ(varintSize(127), 1u);
    EXPECT_EQ(varintSize(128), 2u);
    EXPECT_EQ(varintSize(16383), 2u);
    EXPECT_EQ(varintSize(16384), 3u);
}

TEST(Varint, RandomRoundtrip)
{
    Rng rng(42);
    std::vector<uint64_t> values;
    std::vector<uint8_t> buf;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.nextU64() >> rng.nextRange(64);
        values.push_back(v);
        varintEncode(v, buf);
    }
    const uint8_t *p = buf.data();
    const uint8_t *end = buf.data() + buf.size();
    for (const uint64_t v : values)
        ASSERT_EQ(varintDecode(p, end), v);
    EXPECT_EQ(p, end);
}

TEST(Varint, TruncatedInputStopsAtEnd)
{
    std::vector<uint8_t> buf;
    varintEncode(1ull << 40, buf);
    buf.pop_back(); // truncate
    const uint8_t *p = buf.data();
    const uint8_t *end = buf.data() + buf.size();
    varintDecode(p, end);
    EXPECT_EQ(p, end); // must not read past the end
}

} // namespace
} // namespace wsearch
