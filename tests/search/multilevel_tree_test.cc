#include <gtest/gtest.h>

#include "search/root.hh"

namespace wsearch {
namespace {

struct Fixture
{
    Fixture()
    {
        CorpusConfig cc;
        cc.numDocs = 240;
        cc.vocabSize = 150;
        cc.avgDocLen = 40;
        corpus = std::make_unique<CorpusGenerator>(cc);
        index = std::make_unique<MaterializedIndex>(*corpus);
        for (uint32_t i = 0; i < 4; ++i) {
            LeafServer::Config lc;
            lc.numThreads = 1;
            lc.docIdStride = 4;
            lc.docIdOffset = i;
            leaves.push_back(
                std::make_unique<LeafServer>(*index, lc));
        }
    }

    std::vector<LeafServer *>
    leafPtrs()
    {
        std::vector<LeafServer *> out;
        for (auto &l : leaves)
            out.push_back(l.get());
        return out;
    }

    std::unique_ptr<CorpusGenerator> corpus;
    std::unique_ptr<MaterializedIndex> index;
    std::vector<std::unique_ptr<LeafServer>> leaves;
};

SearchRequest
asRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

Query
someQuery(uint64_t id = 1)
{
    Query q;
    q.id = id;
    q.terms = {0, 2};
    q.conjunctive = false;
    q.topK = 8;
    return q;
}

TEST(MultiLevelTree, GroupsLeavesByFanout)
{
    Fixture f;
    MultiLevelTree t2(f.leafPtrs(), 2, 0);
    EXPECT_EQ(t2.numParents(), 2u);
    MultiLevelTree t3(f.leafPtrs(), 3, 0);
    EXPECT_EQ(t3.numParents(), 2u); // 3 + 1
    MultiLevelTree t4(f.leafPtrs(), 4, 0);
    EXPECT_EQ(t4.numParents(), 1u);
}

TEST(MultiLevelTree, ResultsMatchFlatTree)
{
    // Intermediate merging is associative: the two-level tree must
    // return exactly what the flat tree returns.
    Fixture f;
    Fixture g;
    MultiLevelTree two_level(f.leafPtrs(), 2, 0);
    ServingTree flat(g.leafPtrs(), 0);
    for (uint64_t qid = 0; qid < 20; ++qid) {
        Query q = someQuery(qid);
        q.terms = {static_cast<TermId>(qid % 10),
                   static_cast<TermId>((qid + 3) % 10)};
        const auto a = two_level.handle(0, asRequest(q)).docs;
        const auto b = flat.handle(0, asRequest(q)).docs;
        ASSERT_EQ(a.size(), b.size()) << "query " << qid;
        for (size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].doc, b[i].doc);
            ASSERT_EQ(a[i].score, b[i].score);
        }
    }
}

TEST(MultiLevelTree, StatsCountParentsAndLeaves)
{
    Fixture f;
    MultiLevelTree tree(f.leafPtrs(), 2, 0);
    tree.handle(0, asRequest(someQuery()));
    EXPECT_EQ(tree.stats().queries, 1u);
    EXPECT_EQ(tree.stats().parentMerges, 2u);
    EXPECT_EQ(tree.stats().leafQueries, 4u);
}

TEST(MultiLevelTree, CacheShortCircuitsWholeTree)
{
    Fixture f;
    MultiLevelTree tree(f.leafPtrs(), 2, 16);
    tree.handle(0, asRequest(someQuery(7)));
    const uint64_t leaf_queries = tree.stats().leafQueries;
    tree.handle(0, asRequest(someQuery(7)));
    EXPECT_EQ(tree.stats().cacheHits, 1u);
    EXPECT_EQ(tree.stats().leafQueries, leaf_queries);
}

} // namespace
} // namespace wsearch
