#include <gtest/gtest.h>

#include <map>

#include "search/query.hh"

namespace wsearch {
namespace {

QueryGenerator::Config
smallConfig()
{
    QueryGenerator::Config c;
    c.distinctQueries = 4096;
    c.vocabSize = 1000;
    return c;
}

TEST(QueryGen, MaterializeIsDeterministic)
{
    QueryGenerator a(smallConfig()), b(smallConfig());
    for (uint64_t qid : {0ull, 7ull, 4095ull}) {
        const Query qa = a.materialize(qid);
        const Query qb = b.materialize(qid);
        EXPECT_EQ(qa.terms, qb.terms);
        EXPECT_EQ(qa.conjunctive, qb.conjunctive);
        EXPECT_EQ(qa.id, qid);
    }
}

TEST(QueryGen, TermCountInRange)
{
    QueryGenerator g(smallConfig());
    for (int i = 0; i < 5000; ++i) {
        const Query q = g.next();
        EXPECT_GE(q.terms.size(), 1u);
        EXPECT_LE(q.terms.size(), 5u);
        for (const TermId t : q.terms)
            EXPECT_LT(t, 1000u);
    }
}

TEST(QueryGen, TrafficIsZipfSkewed)
{
    QueryGenerator g(smallConfig());
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[g.next().id];
    // Far fewer distinct queries than draws, with a heavy head.
    EXPECT_LT(counts.size(), 20000u);
    int max_count = 0;
    for (const auto &[qid, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 200);
}

TEST(QueryGen, SaltedStreamsDiffer)
{
    QueryGenerator a(smallConfig(), 1), b(smallConfig(), 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next().id == b.next().id)
            ++same;
    EXPECT_LT(same, 50);
}

TEST(QueryGen, NextMatchesMaterialize)
{
    QueryGenerator g(smallConfig());
    QueryGenerator ref(smallConfig());
    for (int i = 0; i < 100; ++i) {
        const Query q = g.next();
        const Query m = ref.materialize(q.id);
        EXPECT_EQ(q.terms, m.terms);
        EXPECT_EQ(q.conjunctive, m.conjunctive);
    }
}

} // namespace
} // namespace wsearch
