/**
 * Equivalence suite: the pruned fast path (block cursors, skip-driven
 * AND, MaxScore OR) must return byte-identical top-k -- same doc ids,
 * bit-equal float scores, same order -- as the exhaustive sequential
 * reference executor (ExecAlgo::kSequential), across corpus seeds,
 * AND/OR, and k in {1, 10, 100}. This is the contract that lets
 * bench_leaf's speedup claim stand for the same result set.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "search/executor.hh"
#include "serve/clock.hh"

namespace wsearch {
namespace {

MaterializedIndex
makeIndex(uint64_t seed, uint32_t num_docs = 600,
          uint32_t vocab = 300)
{
    CorpusConfig c;
    c.numDocs = num_docs;
    c.vocabSize = vocab;
    c.avgDocLen = 60;
    c.seed = seed;
    CorpusGenerator corpus(c);
    return MaterializedIndex(corpus);
}

SearchResponse
run(QueryExecutor &ex, const Query &q, ExecAlgo algo)
{
    SearchRequest req;
    req.query = q;
    req.algo = algo;
    return ex.execute(req);
}

/** Assert bit-identical result lists (doc ids, scores, order). */
void
expectIdentical(const SearchResponse &pruned,
                const SearchResponse &seq, const Query &q)
{
    ASSERT_TRUE(pruned.ok);
    ASSERT_TRUE(seq.ok);
    EXPECT_FALSE(pruned.degraded);
    ASSERT_EQ(pruned.docs.size(), seq.docs.size())
        << "k=" << q.topK << " and=" << q.conjunctive;
    for (size_t i = 0; i < pruned.docs.size(); ++i) {
        EXPECT_EQ(pruned.docs[i].doc, seq.docs[i].doc) << "rank " << i;
        // Byte-identical, not approximately equal: both engines
        // accumulate contributions in the same canonical order.
        EXPECT_EQ(pruned.docs[i].score, seq.docs[i].score)
            << "rank " << i << " doc " << pruned.docs[i].doc;
    }
}

TEST(ExecutorEquiv, PrunedMatchesSequentialAcrossSeeds)
{
    for (const uint64_t seed : {0xc0de5ull, 0x1234ull, 0xbeefull}) {
        MaterializedIndex index = makeIndex(seed);
        NullTouchSink sink;
        QueryExecutor ex(index, 0, &sink);
        QueryGenerator::Config qc;
        qc.vocabSize = index.numTerms();
        qc.distinctQueries = 4096;
        qc.seed = seed ^ 0x5eedull;
        QueryGenerator gen(qc);
        for (uint32_t n = 0; n < 60; ++n) {
            Query q = gen.materialize(n);
            for (const uint32_t k : {1u, 10u, 100u}) {
                q.topK = k;
                const auto pruned = run(ex, q, ExecAlgo::kAuto);
                const auto seq = run(ex, q, ExecAlgo::kSequential);
                expectIdentical(pruned, seq, q);
            }
        }
    }
}

TEST(ExecutorEquiv, ForcedAndOrOverridesMatchSequential)
{
    MaterializedIndex index = makeIndex(0xc0de5ull);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    for (TermId a = 0; a < 8; ++a) {
        Query q;
        q.terms = {a, static_cast<TermId>(a + 3),
                   static_cast<TermId>(a + 40)};
        q.topK = 10;
        for (const ExecAlgo algo : {ExecAlgo::kAnd, ExecAlgo::kOr}) {
            q.conjunctive = algo == ExecAlgo::kAnd;
            const auto pruned = run(ex, q, algo);
            const auto seq = run(ex, q, ExecAlgo::kSequential);
            expectIdentical(pruned, seq, q);
        }
    }
}

TEST(ExecutorEquiv, DuplicateAndMissingTerms)
{
    MaterializedIndex index = makeIndex(0xc0de5ull);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    // Duplicate terms (each occurrence contributes) and a term with
    // the smallest df in the vocabulary tail.
    const std::vector<std::vector<TermId>> cases = {
        {0, 0},
        {5, 5, 5},
        {0, 299},
        {299, 298, 0},
    };
    for (const auto &terms : cases) {
        for (const bool conj : {true, false}) {
            Query q;
            q.terms = terms;
            q.conjunctive = conj;
            q.topK = 10;
            const auto pruned = run(ex, q, ExecAlgo::kAuto);
            const auto seq = run(ex, q, ExecAlgo::kSequential);
            expectIdentical(pruned, seq, q);
        }
    }
}

TEST(ExecutorEquiv, ProceduralShardMatchesSequential)
{
    ProceduralIndex::Config c;
    c.numDocs = 50000;
    c.numTerms = 2000;
    c.maxDocFreq = 3000;
    c.minDocFreq = 8;
    c.payloadBytes = 8;
    ProceduralIndex index(c);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    for (TermId a = 0; a < 12; a += 3) {
        Query q;
        q.terms = {a, static_cast<TermId>(a + 1),
                   static_cast<TermId>(a + 50)};
        for (const bool conj : {true, false}) {
            q.conjunctive = conj;
            for (const uint32_t k : {1u, 10u, 100u}) {
                q.topK = k;
                const auto pruned = run(ex, q, ExecAlgo::kAuto);
                const auto seq = run(ex, q, ExecAlgo::kSequential);
                expectIdentical(pruned, seq, q);
            }
        }
    }
}

TEST(ExecutorEquiv, PruningDoesNotScoreMoreThanSequential)
{
    MaterializedIndex index = makeIndex(0xc0de5ull, 3000, 400);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    Query q;
    q.terms = {0, 1, 7}; // common terms: pruning has work to do
    q.conjunctive = false;
    q.topK = 10;
    const auto pruned = run(ex, q, ExecAlgo::kOr);
    const ExecStats ps = ex.lastStats();
    const auto seq = run(ex, q, ExecAlgo::kSequential);
    const ExecStats ss = ex.lastStats();
    expectIdentical(pruned, seq, q);
    EXPECT_LT(ps.candidatesScored, ss.candidatesScored);
    EXPECT_LE(ps.postingsDecoded, ss.postingsDecoded);
}

/** Two-term shard with full control over posting placement. */
class TinyShard : public IndexShard
{
  public:
    TinyShard(uint32_t num_docs,
              const std::vector<std::vector<DocId>> &lists)
        : numDocs_(num_docs)
    {
        uint64_t offset = 0;
        for (const auto &docs : lists) {
            TermData td;
            PostingListBuilder b;
            for (const DocId d : docs)
                b.add(d, 2);
            td.skips = b.releaseSkips(); // must precede release()
            td.bytes = b.release();
            td.info.docFreq = b.count();
            td.info.maxTf = 2;
            td.info.byteLength = td.bytes.size();
            td.info.shardOffset = offset;
            offset += td.info.byteLength;
            terms_.push_back(std::move(td));
        }
        shardBytes_ = offset;
    }

    uint32_t numDocs() const override { return numDocs_; }
    uint32_t
    numTerms() const override
    {
        return static_cast<uint32_t>(terms_.size());
    }
    double avgDocLen() const override { return 60.0; }
    TermInfo
    termInfo(TermId t) const override
    {
        return terms_[t].info;
    }
    uint32_t docLen(DocId) const override { return 60; }
    void
    postingBytes(TermId t, std::vector<uint8_t> &out) const override
    {
        out = terms_[t].bytes;
    }
    bool
    postingView(TermId t, PostingView &out) const override
    {
        const TermData &td = terms_[t];
        out.bytes = td.bytes.data();
        out.size = td.bytes.size();
        out.skips = td.skips.data();
        out.numSkips = static_cast<uint32_t>(td.skips.size());
        out.count = td.info.docFreq;
        return true;
    }
    uint64_t shardBytes() const override { return shardBytes_; }

  private:
    struct TermData
    {
        TermInfo info;
        std::vector<uint8_t> bytes;
        std::vector<SkipEntry> skips;
    };
    uint32_t numDocs_;
    std::vector<TermData> terms_;
    uint64_t shardBytes_ = 0;
};

TEST(ExecutorEquiv, ConjunctiveSkipsBlocks)
{
    // Term 0: every doc (79 blocks). Term 1: two docs far apart.
    // Driving the rare list must land in only a handful of term-0
    // blocks; the sequential engine decodes thousands of postings.
    std::vector<DocId> dense(10000);
    for (DocId d = 0; d < 10000; ++d)
        dense[d] = d;
    TinyShard index(10000, {dense, {5000, 9000}});
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    Query q;
    q.terms = {0, 1};
    q.conjunctive = true;
    q.topK = 10;
    const auto pruned = run(ex, q, ExecAlgo::kAnd);
    const ExecStats ps = ex.lastStats();
    const auto seq = run(ex, q, ExecAlgo::kSequential);
    const ExecStats ss = ex.lastStats();
    expectIdentical(pruned, seq, q);
    ASSERT_EQ(pruned.docs.size(), 2u);
    EXPECT_GT(ps.blocksSkipped, 60u);
    EXPECT_LT(ps.postingsDecoded, 1000u);
    EXPECT_LT(ps.postingsDecoded, ss.postingsDecoded);
    EXPECT_LT(ps.shardBytesRead, ss.shardBytesRead);
}

TEST(ExecutorEquiv, CancelledRequestIsDegraded)
{
    MaterializedIndex index = makeIndex(0xc0de5ull);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    SearchRequest req;
    req.query.terms = {0, 1};
    req.query.conjunctive = false;
    req.cancel = std::make_shared<std::atomic<bool>>(true);
    const SearchResponse resp = ex.execute(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_TRUE(resp.degraded);
    EXPECT_TRUE(resp.docs.empty());
}

TEST(ExecutorEquiv, ExpiredDeadlineIsDegraded)
{
    MaterializedIndex index = makeIndex(0xc0de5ull);
    NullTouchSink sink;
    QueryExecutor ex(index, 0, &sink);
    SearchRequest req;
    req.query.terms = {0, 1};
    req.query.conjunctive = false;
    req.deadlineNs = 1; // epoch + 1ns: long past
    const SearchResponse resp = ex.execute(req);
    EXPECT_TRUE(resp.degraded);
}

/** Flips a cancel flag after the executor's Nth posting-block decode
 *  -- i.e. between blocks, mid-query, from "another thread"'s point
 *  of view. */
class CancelAfterBlocksSink : public TouchSink
{
  public:
    CancelAfterBlocksSink(std::shared_ptr<std::atomic<bool>> cancel,
                          uint32_t after_blocks)
        : cancel_(std::move(cancel)), remaining_(after_blocks)
    {
    }

    void
    touch(uint64_t, uint32_t, AccessKind kind, bool) override
    {
        if (kind == AccessKind::Shard && remaining_ > 0 &&
            --remaining_ == 0)
            cancel_->store(true, std::memory_order_release);
    }

  private:
    std::shared_ptr<std::atomic<bool>> cancel_;
    uint32_t remaining_;
};

TEST(ExecutorEquiv, CancelRaisedBetweenBlocksAbandonsMidQuery)
{
    // One dense list: a full scan scores all 10000 postings across
    // ~79 blocks, with a stop-flag poll every 1024 candidates.
    std::vector<DocId> dense(10000);
    for (DocId d = 0; d < 10000; ++d)
        dense[d] = d;
    TinyShard index(10000, {dense});

    SearchRequest req;
    req.query.terms = {0};
    req.query.conjunctive = false;
    req.query.topK = 10;
    req.algo = ExecAlgo::kOr;

    // Control: without cancellation every candidate is scored.
    NullTouchSink null_sink;
    QueryExecutor control(index, 0, &null_sink);
    const SearchResponse full = control.execute(req);
    ASSERT_TRUE(full.ok);
    EXPECT_FALSE(full.degraded);
    const uint64_t all = control.lastStats().candidatesScored;
    EXPECT_EQ(all, 10000u);

    // Cancel raised after the 3rd block decode: the executor started
    // clean (ok), must notice at the next poll and abandon the rest.
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    CancelAfterBlocksSink sink(cancel, 3);
    QueryExecutor ex(index, 0, &sink);
    req.cancel = cancel;
    const SearchResponse resp = ex.execute(req);
    EXPECT_TRUE(resp.ok);
    EXPECT_TRUE(resp.degraded);
    const uint64_t scored = ex.lastStats().candidatesScored;
    EXPECT_GT(scored, 0u);
    EXPECT_LT(scored, all);
}

TEST(ExecutorEquiv, DeadlineExactlyAtStartStillExecutes)
{
    MaterializedIndex index = makeIndex(0xc0de5ull);
    NullTouchSink sink;
    SimClock sim; // frozen: virtual time never advances mid-query
    QueryExecutor ex(index, 0, &sink, &sim);
    SearchRequest req;
    req.query.terms = {0, 1};
    req.query.conjunctive = false;

    // Expiry is strict (now > deadline): a deadline equal to the
    // start instant is still alive and the query runs to completion.
    req.deadlineNs = sim.now();
    const SearchResponse at = ex.execute(req);
    EXPECT_TRUE(at.ok);
    EXPECT_FALSE(at.degraded);
    EXPECT_FALSE(at.docs.empty());

    // One nanosecond earlier is already past at the pre-execution
    // check: degraded, nothing executed.
    req.deadlineNs = sim.now() - 1;
    const SearchResponse past = ex.execute(req);
    EXPECT_FALSE(past.ok);
    EXPECT_TRUE(past.degraded);
    EXPECT_TRUE(past.docs.empty());
}

} // namespace
} // namespace wsearch
