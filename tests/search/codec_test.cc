/**
 * Codec equivalence suite: the bit-packed frame-of-reference codec
 * must decode to exactly the same posting stream as the varint codec
 * and the plain reference vector, across block-boundary/tail/singleton
 * list shapes, under seek fuzz at every block edge, and at every SIMD
 * dispatch level (scalar is the reference; SSE2/AVX2 must be
 * bit-identical to it). Also pins the executor contract: pruned and
 * sequential engines return byte-identical top-k on a packed shard,
 * and that top-k equals the varint shard's.
 */

#include <gtest/gtest.h>

#include <vector>

#include "search/block_codec.hh"
#include "search/executor.hh"
#include "search/postings.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

/** Reference postings with gap magnitudes cycling through widths
 *  (1-bit to >16-bit) so every packed bit width gets exercised. */
std::vector<Posting>
makePostings(uint32_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Posting> out;
    out.reserve(count);
    DocId doc = 0;
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t gap;
        switch (rng.nextRange(4)) {
          case 0:
            gap = 1; // dense run: gapBits can drop to 1
            break;
          case 1:
            gap = 1 + static_cast<uint32_t>(rng.nextRange(200));
            break;
          case 2:
            gap = 1 + static_cast<uint32_t>(rng.nextRange(1 << 16));
            break;
          default:
            gap = 1 + static_cast<uint32_t>(rng.nextRange(1 << 20));
            break;
        }
        doc += gap;
        const uint32_t tf = rng.nextRange(50) == 0
            ? 1 + static_cast<uint32_t>(rng.nextRange(100000))
            : 1 + static_cast<uint32_t>(rng.nextRange(7));
        out.push_back(Posting{doc, tf});
    }
    return out;
}

/** A list built in @p codec plus a borrowed view over it. */
struct CodecList
{
    std::vector<uint8_t> bytes;
    std::vector<SkipEntry> skips;
    PostingView view;

    CodecList(const std::vector<Posting> &ps, PostingCodec codec)
    {
        PostingListBuilder b(codec);
        for (const Posting &p : ps)
            b.add(p.doc, p.tf);
        skips = b.releaseSkips(); // must precede release()
        bytes = b.release();
        view.bytes = bytes.data();
        view.size = bytes.size();
        view.skips = skips.data();
        view.numSkips = static_cast<uint32_t>(skips.size());
        view.count = static_cast<uint32_t>(ps.size());
        view.codec = codec;
    }
};

const uint32_t kShapes[] = {1,   2,   127, 128, 129,  255,
                            256, 257, 300, 384, 385,  1000};

TEST(Codec, PackedRoundTripAcrossShapes)
{
    for (const uint32_t count : kShapes) {
        const auto ps = makePostings(count, 0xabc0ull + count);
        CodecList l(ps, PostingCodec::kPacked);

        // The tail pad rides after the last block, outside endByte.
        ASSERT_FALSE(l.skips.empty());
        EXPECT_EQ(l.skips.back().endByte + kPackedTailPad,
                  l.bytes.size())
            << count;

        BlockPostingCursor c;
        c.reset(l.view, 0);
        for (uint32_t i = 0; i < count; ++i) {
            ASSERT_TRUE(c.valid()) << count << " @" << i;
            ASSERT_EQ(c.doc(), ps[i].doc) << count << " @" << i;
            ASSERT_EQ(c.tf(), ps[i].tf) << count << " @" << i;
            c.next();
        }
        EXPECT_FALSE(c.valid());
    }
}

TEST(Codec, PackedAndVarintAgreeOnSkipTables)
{
    for (const uint32_t count : kShapes) {
        const auto ps = makePostings(count, 0x5ca1eull + count);
        CodecList packed(ps, PostingCodec::kPacked);
        CodecList varint(ps, PostingCodec::kVarint);
        ASSERT_EQ(packed.skips.size(), varint.skips.size()) << count;
        for (size_t b = 0; b < packed.skips.size(); ++b) {
            // endByte differs by construction (different layouts);
            // the logical block metadata must not.
            EXPECT_EQ(packed.skips[b].lastDoc, varint.skips[b].lastDoc);
            EXPECT_EQ(packed.skips[b].count, varint.skips[b].count);
            EXPECT_EQ(packed.skips[b].maxTf, varint.skips[b].maxTf);
        }
        BlockPostingCursor cp, cv;
        cp.reset(packed.view, 0);
        cv.reset(varint.view, 0);
        for (uint32_t i = 0; i < count; ++i) {
            ASSERT_TRUE(cp.valid() && cv.valid()) << count << " " << i;
            ASSERT_EQ(cp.doc(), cv.doc());
            ASSERT_EQ(cp.tf(), cv.tf());
            cp.next();
            cv.next();
        }
        EXPECT_FALSE(cp.valid());
        EXPECT_FALSE(cv.valid());
    }
}

TEST(Codec, SeekFuzzAtEveryBlockBoundary)
{
    const auto ps = makePostings(385, 0xf00dull); // 128+128+128+1
    for (const PostingCodec codec :
         {PostingCodec::kVarint, PostingCodec::kPacked}) {
        CodecList l(ps, codec);
        // Every posting adjacent to a block edge, +-1 in doc space.
        for (uint32_t edge = 0; edge < 385; ++edge) {
            if ((edge + 1) % kPostingBlockSize > 2 &&
                edge % kPostingBlockSize > 1)
                continue;
            for (const int delta : {-1, 0, 1}) {
                const DocId target = static_cast<DocId>(
                    static_cast<int64_t>(ps[edge].doc) + delta);
                // Reference: first posting with doc >= target.
                size_t want = 0;
                while (want < ps.size() && ps[want].doc < target)
                    ++want;
                BlockPostingCursor c;
                c.reset(l.view, 0);
                c.seek(target);
                if (want == ps.size()) {
                    EXPECT_FALSE(c.valid());
                } else {
                    ASSERT_TRUE(c.valid())
                        << "edge " << edge << " delta " << delta;
                    EXPECT_EQ(c.doc(), ps[want].doc);
                    EXPECT_EQ(c.tf(), ps[want].tf);
                }
            }
        }
    }
}

TEST(Codec, MonotoneSeekFuzzMatchesReference)
{
    const auto ps = makePostings(1000, 0xf0221ull);
    for (const PostingCodec codec :
         {PostingCodec::kVarint, PostingCodec::kPacked}) {
        CodecList l(ps, codec);
        for (uint64_t round = 0; round < 20; ++round) {
            Rng rng(0x9999ull + round);
            BlockPostingCursor c;
            c.reset(l.view, 0);
            size_t ref = 0;
            DocId target = 0;
            while (true) {
                target += 1 + static_cast<DocId>(rng.nextRange(
                    ps.back().doc / 40));
                while (ref < ps.size() && ps[ref].doc < target)
                    ++ref;
                c.seek(target);
                if (ref == ps.size()) {
                    EXPECT_FALSE(c.valid());
                    break;
                }
                ASSERT_TRUE(c.valid()) << "target " << target;
                ASSERT_EQ(c.doc(), ps[ref].doc);
                ASSERT_EQ(c.tf(), ps[ref].tf);
                // Interleave a few next() steps to move off the edge.
                for (int s = 0; s < 3 && c.valid(); ++s) {
                    c.next();
                    ++ref;
                    if (ref < ps.size() && c.valid()) {
                        ASSERT_EQ(c.doc(), ps[ref].doc);
                        target = c.doc();
                    }
                }
                if (!c.valid() || ref >= ps.size())
                    break;
            }
        }
    }
}

TEST(Codec, UnpackLevelsBitIdentical)
{
    // Random payloads are valid packed payloads for *some* value
    // sequence, so comparing unpack outputs directly pins the SIMD
    // kernels to the scalar reference for every width.
    Rng rng(0xdec0deull);
    const auto level = packed_simd::activeLevel();
    SCOPED_TRACE(packed_simd::levelName(level));
    for (uint32_t bits = 0; bits <= 32; ++bits) {
        // Payload plus the SIMD over-read slack.
        std::vector<uint8_t> in(16 * bits + kPackedTailPad);
        for (auto &b : in)
            b = static_cast<uint8_t>(rng.nextU64());
        alignas(32) uint32_t ref[kPostingBlockSize];
        alignas(32) uint32_t got[kPostingBlockSize];
        packed_simd::unpackScalar(in.data(), bits, ref);
        if (packed_simd::unpackSse2(in.data(), bits, got)) {
            for (uint32_t i = 0; i < kPostingBlockSize; ++i)
                ASSERT_EQ(got[i], ref[i]) << "sse2 w" << bits
                                          << " @" << i;
        }
        if (packed_simd::unpackAvx2(in.data(), bits, got)) {
            for (uint32_t i = 0; i < kPostingBlockSize; ++i)
                ASSERT_EQ(got[i], ref[i]) << "avx2 w" << bits
                                          << " @" << i;
        }
    }
#if defined(__x86_64__) && !defined(WSEARCH_NO_AVX2)
    // x86 builds must not silently fall back to scalar.
    EXPECT_NE(level, packed_simd::Level::kScalar);
#else
    EXPECT_EQ(level, packed_simd::Level::kScalar);
#endif
}

TEST(Codec, SequentialCursorWalksPackedBlockwise)
{
    for (const uint32_t count : kShapes) {
        const auto ps = makePostings(count, 0xcafeull + count);
        CodecList l(ps, PostingCodec::kPacked);
        PostingCursor c(l.bytes.data(),
                        l.bytes.data() + l.bytes.size(), count, 0,
                        PostingCodec::kPacked);
        for (uint32_t i = 0; i < count; ++i) {
            ASSERT_TRUE(c.valid()) << count << " @" << i;
            ASSERT_EQ(c.doc(), ps[i].doc);
            ASSERT_EQ(c.tf(), ps[i].tf);
            // Consumption is block-granular: always a block endByte.
            const size_t consumed = c.bytesConsumed(l.bytes.data());
            EXPECT_EQ(consumed,
                      l.skips[i / kPostingBlockSize].endByte);
            c.next();
        }
        EXPECT_FALSE(c.valid());
        // Fully consumed = everything but the tail pad.
        EXPECT_EQ(c.bytesConsumed(l.bytes.data()),
                  l.bytes.size() - kPackedTailPad);
    }
}

TEST(Codec, SequentialCursorSeeksPackedStream)
{
    const auto ps = makePostings(300, 0x5eed7ull);
    CodecList l(ps, PostingCodec::kPacked);
    PostingCursor c(l.bytes.data(), l.bytes.data() + l.bytes.size(),
                    300, 0, PostingCodec::kPacked);
    c.seek(ps[200].doc);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.doc(), ps[200].doc);
    c.seek(ps[200].doc + 1);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.doc(), ps[201].doc);
    c.seek(ps.back().doc + 1);
    EXPECT_FALSE(c.valid());
}

MaterializedIndex
makeIndex(uint64_t seed, PostingCodec codec)
{
    CorpusConfig c;
    c.numDocs = 600;
    c.vocabSize = 300;
    c.avgDocLen = 60;
    c.seed = seed;
    CorpusGenerator corpus(c);
    return MaterializedIndex(corpus, codec);
}

SearchResponse
run(QueryExecutor &ex, const Query &q, ExecAlgo algo)
{
    SearchRequest req;
    req.query = q;
    req.algo = algo;
    return ex.execute(req);
}

TEST(Codec, ExecutorEquivalenceOnPackedShard)
{
    // Four engines -- packed pruned, packed sequential, varint
    // pruned, varint sequential -- one result set.
    MaterializedIndex packed =
        makeIndex(0xc0de5ull, PostingCodec::kPacked);
    MaterializedIndex varint =
        makeIndex(0xc0de5ull, PostingCodec::kVarint);
    EXPECT_EQ(packed.codec(), PostingCodec::kPacked);
    NullTouchSink sink;
    QueryExecutor exp(packed, 0, &sink);
    QueryExecutor exv(varint, 0, &sink);
    QueryGenerator::Config qc;
    qc.vocabSize = packed.numTerms();
    qc.distinctQueries = 4096;
    qc.seed = 0x5eedull;
    QueryGenerator gen(qc);
    uint64_t packed_blocks = 0;
    for (uint32_t n = 0; n < 40; ++n) {
        Query q = gen.materialize(n);
        for (const uint32_t k : {1u, 10u, 100u}) {
            q.topK = k;
            const auto pp = run(exp, q, ExecAlgo::kAuto);
            packed_blocks += exp.lastStats().packedBlocksDecoded;
            EXPECT_EQ(exp.lastStats().packedBlocksDecoded,
                      exp.lastStats().blocksDecoded);
            const auto pse = run(exp, q, ExecAlgo::kSequential);
            const auto vp = run(exv, q, ExecAlgo::kAuto);
            EXPECT_EQ(exv.lastStats().packedBlocksDecoded, 0u);
            const auto vse = run(exv, q, ExecAlgo::kSequential);
            ASSERT_EQ(pp.docs.size(), vse.docs.size());
            for (size_t i = 0; i < pp.docs.size(); ++i) {
                // Bit-identical across engines AND codecs.
                ASSERT_EQ(pp.docs[i].doc, vse.docs[i].doc);
                ASSERT_EQ(pp.docs[i].score, vse.docs[i].score);
                ASSERT_EQ(pse.docs[i].doc, vse.docs[i].doc);
                ASSERT_EQ(pse.docs[i].score, vse.docs[i].score);
                ASSERT_EQ(vp.docs[i].doc, vse.docs[i].doc);
                ASSERT_EQ(vp.docs[i].score, vse.docs[i].score);
            }
        }
    }
    EXPECT_GT(packed_blocks, 0u);
}

} // namespace
} // namespace wsearch
