#include <gtest/gtest.h>

#include "search/root.hh"

namespace wsearch {
namespace {

TEST(RootMerge, MergesBestFirst)
{
    std::vector<std::vector<ScoredDoc>> partials = {
        {{1, 9.f}, {2, 5.f}},
        {{3, 7.f}, {4, 1.f}},
        {{5, 8.f}},
    };
    const auto merged = RootServer::merge(partials, 3);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].doc, 1u);
    EXPECT_EQ(merged[1].doc, 5u);
    EXPECT_EQ(merged[2].doc, 3u);
}

TEST(RootMerge, HandlesEmptyPartials)
{
    std::vector<std::vector<ScoredDoc>> partials = {{}, {{1, 2.f}}, {}};
    const auto merged = RootServer::merge(partials, 10);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].doc, 1u);
}

/** Run @p q through the SearchRequest API, returning just the docs. */
std::vector<ScoredDoc>
treeRun(ServingTree &tree, uint32_t tid, const Query &q)
{
    SearchRequest req;
    req.query = q;
    return tree.handle(tid, req).docs;
}

struct TreeFixture
{
    TreeFixture()
    {
        CorpusConfig cc;
        cc.numDocs = 300;
        cc.vocabSize = 200;
        cc.avgDocLen = 50;
        corpus = std::make_unique<CorpusGenerator>(cc);
        index = std::make_unique<MaterializedIndex>(*corpus);

        LeafServer::Config lc;
        lc.numThreads = 2;
        // Two leaves over the same shard but with different doc-id
        // mappings, standing in for disjoint partitions.
        LeafServer::Config lc0 = lc, lc1 = lc;
        lc0.docIdStride = 2;
        lc0.docIdOffset = 0;
        lc1.docIdStride = 2;
        lc1.docIdOffset = 1;
        leaf0 = std::make_unique<LeafServer>(*index, lc0);
        leaf1 = std::make_unique<LeafServer>(*index, lc1);
    }

    std::unique_ptr<CorpusGenerator> corpus;
    std::unique_ptr<MaterializedIndex> index;
    std::unique_ptr<LeafServer> leaf0, leaf1;
};

TEST(ServingTree, FansOutAndMerges)
{
    TreeFixture f;
    ServingTree tree({f.leaf0.get(), f.leaf1.get()}, 64);
    Query q;
    q.id = 42;
    q.terms = {0, 1};
    q.conjunctive = false;
    q.topK = 10;
    const auto r = treeRun(tree, 0, q);
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(tree.stats().queries, 1u);
    EXPECT_EQ(tree.stats().leafQueries, 2u);
    // Results contain both even (leaf0) and odd (leaf1) global ids.
    bool even = false, odd = false;
    for (const auto &sd : r)
        (sd.doc % 2 == 0 ? even : odd) = true;
    EXPECT_TRUE(even);
    EXPECT_TRUE(odd);
}

TEST(ServingTree, CacheAbsorbsRepeats)
{
    TreeFixture f;
    ServingTree tree({f.leaf0.get(), f.leaf1.get()}, 64);
    Query q;
    q.id = 7;
    q.terms = {0};
    q.conjunctive = false;
    const auto first = treeRun(tree, 0, q);
    const auto second = treeRun(tree, 1, q);
    EXPECT_EQ(tree.stats().queries, 2u);
    EXPECT_EQ(tree.stats().cacheHits, 1u);
    EXPECT_EQ(tree.stats().leafQueries, 2u); // only the first fan-out
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].doc, second[i].doc);
}

TEST(ServingTree, SingleLeafEqualsDirectServe)
{
    TreeFixture f;
    LeafServer::Config plain;
    plain.numThreads = 1;
    LeafServer leaf(*f.index, plain);
    LeafServer leaf_direct(*f.index, plain);
    ServingTree tree({&leaf}, 0); // no cache
    Query q;
    q.id = 9;
    q.terms = {2, 3};
    q.conjunctive = false;
    q.topK = 8;
    const auto via_tree = treeRun(tree, 0, q);
    SearchRequest req;
    req.query = q;
    const auto direct = leaf_direct.serve(0, req).docs;
    ASSERT_EQ(via_tree.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(via_tree[i].doc, direct[i].doc);
}

TEST(LeafFootprint, SharedHeapDominatesAndScalesSubLinearly)
{
    // A production-scale shard: the shared metadata/lexicon heap
    // dwarfs the per-thread buffers, which is the paper's Figure 4
    // observation.
    ProceduralIndex::Config pc;
    pc.numDocs = 400000;
    pc.numTerms = 50000;
    pc.maxDocFreq = 1000;
    pc.minDocFreq = 4;
    pc.payloadBytes = 0;
    ProceduralIndex shard(pc);
    LeafServer::Config c1, c8;
    c1.numThreads = 1;
    c1.perThreadBufferBytes = 256 * KiB;
    c8.numThreads = 8;
    c8.perThreadBufferBytes = 256 * KiB;
    LeafServer l1(shard, c1), l8(shard, c8);
    const FootprintStats f1 = l1.footprint();
    const FootprintStats f8 = l8.footprint();
    // Heap >> stack and code scales not at all (paper Figure 4).
    EXPECT_GT(f8.heapBytes(), f8.stackBytes);
    EXPECT_EQ(f1.codeBytes, f8.codeBytes);
    // 8x threads must NOT mean 8x heap: shared part is constant.
    EXPECT_LT(static_cast<double>(f8.heapBytes()),
              4.0 * static_cast<double>(f1.heapBytes()));
    EXPECT_EQ(f8.stackBytes, 8 * f1.stackBytes);
}

} // namespace
} // namespace wsearch
