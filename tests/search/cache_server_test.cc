#include <gtest/gtest.h>

#include "search/cache_server.hh"

namespace wsearch {
namespace {

std::vector<ScoredDoc>
someResults(uint32_t n)
{
    std::vector<ScoredDoc> r;
    for (uint32_t i = 0; i < n; ++i)
        r.push_back({i, static_cast<float>(n - i)});
    return r;
}

TEST(QueryCache, MissThenHit)
{
    QueryCacheServer c(10);
    std::vector<ScoredDoc> out;
    EXPECT_FALSE(c.lookup(1, &out));
    c.insert(1, someResults(3));
    EXPECT_TRUE(c.lookup(1, &out));
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.lookups(), 2u);
}

TEST(QueryCache, LruEviction)
{
    QueryCacheServer c(2);
    c.insert(1, someResults(1));
    c.insert(2, someResults(1));
    c.lookup(1, nullptr); // 1 is now MRU
    c.insert(3, someResults(1)); // evicts 2
    EXPECT_TRUE(c.lookup(1, nullptr));
    EXPECT_FALSE(c.lookup(2, nullptr));
    EXPECT_TRUE(c.lookup(3, nullptr));
}

TEST(QueryCache, CapacityRespected)
{
    QueryCacheServer c(16);
    for (uint64_t q = 0; q < 1000; ++q)
        c.insert(q, someResults(1));
    EXPECT_EQ(c.size(), 16u);
}

TEST(QueryCache, ReinsertUpdates)
{
    QueryCacheServer c(4);
    c.insert(1, someResults(1));
    c.insert(1, someResults(5));
    std::vector<ScoredDoc> out;
    EXPECT_TRUE(c.lookup(1, &out));
    EXPECT_EQ(out.size(), 5u);
    EXPECT_EQ(c.size(), 1u);
}

TEST(QueryCache, ZeroCapacityNeverCaches)
{
    QueryCacheServer c(0);
    c.insert(1, someResults(1));
    c.insert(1, someResults(2)); // re-insert must not sneak in either
    EXPECT_FALSE(c.lookup(1, nullptr));
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.residentBytes(), 0u);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(QueryCache, EvictionsCounted)
{
    QueryCacheServer c(2);
    c.insert(1, someResults(1));
    c.insert(2, someResults(1));
    EXPECT_EQ(c.evictions(), 0u);
    c.insert(3, someResults(1)); // evicts 1
    EXPECT_EQ(c.evictions(), 1u);
    c.insert(3, someResults(2)); // update in place: no eviction
    EXPECT_EQ(c.evictions(), 1u);
    c.insert(4, someResults(1)); // evicts 2
    EXPECT_EQ(c.evictions(), 2u);
    EXPECT_EQ(c.size(), 2u);
}

TEST(QueryCache, HitRateComputed)
{
    QueryCacheServer c(10);
    c.insert(1, someResults(1));
    c.lookup(1, nullptr);
    c.lookup(2, nullptr);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

} // namespace
} // namespace wsearch
