#include <gtest/gtest.h>

#include <vector>

#include "search/postings.hh"

namespace wsearch {
namespace {

/** Build an encoded list of @p count postings with doc = i * gap. */
struct BuiltList
{
    std::vector<uint8_t> bytes;
    std::vector<SkipEntry> skips;
    std::vector<Posting> plain;
    PostingView view;

    BuiltList(uint32_t count, uint32_t gap)
    {
        PostingListBuilder b;
        for (uint32_t i = 0; i < count; ++i) {
            const Posting p{i * gap, 1 + i % 7};
            b.add(p.doc, p.tf);
            plain.push_back(p);
        }
        skips = b.releaseSkips(); // must precede release()
        bytes = b.release();
        view.bytes = bytes.data();
        view.size = bytes.size();
        view.skips = skips.data();
        view.numSkips = static_cast<uint32_t>(skips.size());
        view.count = count;
    }
};

TEST(BlockPostings, BuilderSkipsMatchRebuiltSkips)
{
    // Exact block multiples, short tails, and sub-block lists must
    // all produce the same table as the decode-on-demand path.
    for (const uint32_t count : {1u, 127u, 128u, 129u, 256u, 300u}) {
        BuiltList l(count, 3);
        std::vector<SkipEntry> rebuilt;
        buildSkipEntries(l.bytes.data(),
                         l.bytes.data() + l.bytes.size(), count, 0,
                         rebuilt);
        ASSERT_EQ(l.skips.size(), rebuilt.size()) << count;
        for (size_t i = 0; i < rebuilt.size(); ++i) {
            EXPECT_EQ(l.skips[i].lastDoc, rebuilt[i].lastDoc);
            EXPECT_EQ(l.skips[i].endByte, rebuilt[i].endByte);
            EXPECT_EQ(l.skips[i].count, rebuilt[i].count);
            EXPECT_EQ(l.skips[i].maxTf, rebuilt[i].maxTf);
        }
    }
}

TEST(BlockPostings, TailOfOnePostingAgreesOnMaxTf)
{
    // Regression guard: a tail block of exactly one posting is where
    // the builder and the one-pass rebuild could diverge on the tail
    // entry's maxTf (e.g. leaking the previous block's running max).
    // Both now feed the same SkipTableBuilder, and this pins the tail
    // entry to exactly the lone posting's tf.
    for (const uint32_t tail_tf : {1u, 9u}) {
        PostingListBuilder b;
        std::vector<uint8_t> bytes;
        for (uint32_t i = 0; i < kPostingBlockSize; ++i)
            b.add(i * 3, 5); // block maxTf = 5
        b.add(kPostingBlockSize * 3, tail_tf); // tail: one posting
        std::vector<SkipEntry> skips = b.releaseSkips();
        bytes = b.release();
        ASSERT_EQ(skips.size(), 2u);
        EXPECT_EQ(skips[0].maxTf, 5u);
        EXPECT_EQ(skips[1].maxTf, tail_tf);
        EXPECT_EQ(skips[1].count, 1u);
        EXPECT_EQ(skips[1].lastDoc, kPostingBlockSize * 3);

        std::vector<SkipEntry> rebuilt;
        buildSkipEntries(bytes.data(), bytes.data() + bytes.size(),
                         kPostingBlockSize + 1, 0, rebuilt);
        ASSERT_EQ(rebuilt.size(), 2u);
        EXPECT_EQ(rebuilt[1].maxTf, skips[1].maxTf);
        EXPECT_EQ(rebuilt[1].lastDoc, skips[1].lastDoc);
        EXPECT_EQ(rebuilt[1].endByte, skips[1].endByte);
        EXPECT_EQ(rebuilt[1].count, skips[1].count);
    }
}

TEST(BlockPostings, TailEntryCoversFinalBytes)
{
    // Regression: releaseSkips() flushes the tail block against the
    // *current* encoded length. Releasing the bytes first left the
    // tail entry with endByte == 0, so the tail block decoded an
    // empty range (doc = previous lastDoc, tf = 0).
    BuiltList l(300, 2);
    ASSERT_EQ(l.skips.size(), 3u);
    EXPECT_EQ(l.skips.back().endByte, l.bytes.size());
    EXPECT_EQ(l.skips.back().count, 300u - 2 * kPostingBlockSize);
    EXPECT_EQ(l.skips.back().lastDoc, l.plain.back().doc);
}

TEST(BlockPostings, CursorMatchesSequentialDecode)
{
    for (const uint32_t count : {1u, 128u, 200u, 256u, 385u}) {
        BuiltList l(count, 3);
        BlockPostingCursor c;
        c.reset(l.view, 0);
        for (uint32_t i = 0; i < count; ++i) {
            ASSERT_TRUE(c.valid()) << count << " @" << i;
            EXPECT_EQ(c.doc(), l.plain[i].doc);
            EXPECT_EQ(c.tf(), l.plain[i].tf);
            c.next();
        }
        EXPECT_FALSE(c.valid());
    }
}

TEST(BlockPostings, TailBlockFirstPostingDecodes)
{
    // The first posting after each block edge is where a broken
    // boundary shows up (wrong base doc or byte offset).
    BuiltList l(385, 3); // blocks of 128, 128, 128, 1
    BlockPostingCursor c;
    c.reset(l.view, 0);
    for (uint32_t i = 0; i < 385; ++i, c.next()) {
        if (i % kPostingBlockSize != 0)
            continue;
        ASSERT_TRUE(c.valid());
        EXPECT_EQ(c.doc(), l.plain[i].doc) << "block edge @" << i;
        EXPECT_EQ(c.tf(), l.plain[i].tf) << "block edge @" << i;
    }
}

TEST(BlockPostings, SeekWithinBlock)
{
    BuiltList l(100, 5); // single block
    BlockPostingCursor c;
    c.reset(l.view, 0);
    c.seek(251); // docs are multiples of 5: land on 255
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.doc(), 255u);
    c.seek(255); // exact hit is a no-op
    EXPECT_EQ(c.doc(), 255u);
    c.seek(100); // backwards target never rewinds
    EXPECT_EQ(c.doc(), 255u);
}

TEST(BlockPostings, SeekAcrossBlockBoundaries)
{
    BuiltList l(385, 3); // blocks of 128, 128, 128, 1
    const uint32_t edges[] = {127, 128, 255, 256, 383, 384};
    for (const uint32_t i : edges) {
        BlockPostingCursor c;
        c.reset(l.view, 0);
        c.seek(l.plain[i].doc);
        ASSERT_TRUE(c.valid()) << "edge " << i;
        EXPECT_EQ(c.doc(), l.plain[i].doc);
        EXPECT_EQ(c.tf(), l.plain[i].tf);
        // Target between this doc and the next lands on the next.
        if (i + 1 < 385) {
            c.seek(l.plain[i].doc + 1);
            ASSERT_TRUE(c.valid());
            EXPECT_EQ(c.doc(), l.plain[i + 1].doc);
        }
    }
}

TEST(BlockPostings, SeekIntoLastBlockTail)
{
    BuiltList l(300, 2); // tail block of 44 postings
    BlockPostingCursor c;
    c.reset(l.view, 0);
    c.seek(l.plain[299].doc); // very last posting
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(c.doc(), l.plain[299].doc);
    EXPECT_EQ(c.tf(), l.plain[299].tf);
    c.next();
    EXPECT_FALSE(c.valid());
}

TEST(BlockPostings, SeekPastEndExhausts)
{
    BuiltList l(300, 2);
    BlockPostingCursor c;
    c.reset(l.view, 0);
    c.seek(l.plain.back().doc + 1);
    EXPECT_FALSE(c.valid());
}

TEST(BlockPostings, SeekSkipsInteriorBlocksWithoutDecoding)
{
    BuiltList l(5 * kPostingBlockSize, 3);
    BlockPostingCursor c;
    c.reset(l.view, 0);
    uint64_t b0, b1;
    uint32_t n;
    ASSERT_TRUE(c.takeDecodedBlock(b0, b1, n)); // reset decoded block 0
    EXPECT_EQ(b0, 0u);
    EXPECT_EQ(n, kPostingBlockSize);

    // Jump straight into block 3: blocks 1 and 2 are never decoded.
    const uint32_t i = 3 * kPostingBlockSize + 7;
    c.seek(l.plain[i].doc);
    EXPECT_EQ(c.doc(), l.plain[i].doc);
    ASSERT_TRUE(c.takeDecodedBlock(b0, b1, n));
    EXPECT_EQ(b0, l.skips[2].endByte);
    EXPECT_EQ(b1, l.skips[3].endByte);
    EXPECT_FALSE(c.takeDecodedBlock(b0, b1, n)); // drained

    // The scan read skip entries 1..3 (landing entry included).
    uint32_t first, count;
    ASSERT_TRUE(c.takeSkipScan(first, count));
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(count, 3u);
    EXPECT_FALSE(c.takeSkipScan(first, count)); // drained
}

TEST(BlockPostings, PayloadBytesAreSkipped)
{
    // Encode (gap, tf, 4-byte payload) postings by hand; the cursor
    // must step over the payload on decode and at block edges.
    const uint32_t count = 200, payload = 4;
    std::vector<uint8_t> bytes;
    std::vector<Posting> plain;
    for (uint32_t i = 0; i < count; ++i) {
        const Posting p{i * 7, 1 + i % 5};
        varintEncode(i == 0 ? p.doc : 7u, bytes);
        varintEncode(p.tf, bytes);
        for (uint32_t b = 0; b < payload; ++b)
            bytes.push_back(0xab);
        plain.push_back(p);
    }
    std::vector<SkipEntry> skips;
    buildSkipEntries(bytes.data(), bytes.data() + bytes.size(),
                     count, payload, skips);
    ASSERT_EQ(skips.size(), 2u);
    EXPECT_EQ(skips.back().endByte, bytes.size());

    PostingView v;
    v.bytes = bytes.data();
    v.size = bytes.size();
    v.skips = skips.data();
    v.numSkips = static_cast<uint32_t>(skips.size());
    v.count = count;
    BlockPostingCursor c;
    c.reset(v, payload);
    for (uint32_t i = 0; i < count; ++i) {
        ASSERT_TRUE(c.valid()) << i;
        EXPECT_EQ(c.doc(), plain[i].doc);
        EXPECT_EQ(c.tf(), plain[i].tf);
        c.next();
    }
    EXPECT_FALSE(c.valid());
}

TEST(BlockPostings, EmptyListIsInvalid)
{
    PostingListBuilder b;
    std::vector<SkipEntry> skips = b.releaseSkips();
    std::vector<uint8_t> bytes = b.release();
    EXPECT_TRUE(skips.empty());
    PostingView v;
    v.bytes = bytes.data();
    v.size = 0;
    v.skips = skips.data();
    v.numSkips = 0;
    v.count = 0;
    BlockPostingCursor c;
    c.reset(v, 0);
    EXPECT_FALSE(c.valid());
    c.seek(42);
    EXPECT_FALSE(c.valid());
}

TEST(BlockPostings, BlockMetaExposesMaxTf)
{
    BuiltList l(300, 2); // tfs cycle 1..7
    BlockPostingCursor c;
    c.reset(l.view, 0);
    EXPECT_EQ(c.blockMeta().maxTf, 7u);
    EXPECT_EQ(c.blockMeta().count, kPostingBlockSize);
    c.seek(l.plain[2 * kPostingBlockSize].doc); // tail block
    EXPECT_EQ(c.blockMeta().count, 300u - 2 * kPostingBlockSize);
    EXPECT_EQ(c.blockMeta().lastDoc, l.plain.back().doc);
}

} // namespace
} // namespace wsearch
