#include <gtest/gtest.h>

#include "search/scorer.hh"
#include "search/topk.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Bm25, IdfDecreasesWithDocFreq)
{
    Bm25Scorer s(100000, 100.0);
    EXPECT_GT(s.idf(10), s.idf(100));
    EXPECT_GT(s.idf(100), s.idf(10000));
    EXPECT_GT(s.idf(99999), 0.0); // smoothed: never negative
}

TEST(Bm25, ScoreIncreasesWithTfSaturating)
{
    Bm25Scorer s(100000, 100.0);
    const double s1 = s.score(1, 100, 50);
    const double s2 = s.score(2, 100, 50);
    const double s10 = s.score(10, 100, 50);
    const double s20 = s.score(20, 100, 50);
    EXPECT_GT(s2, s1);
    EXPECT_GT(s10, s2);
    // Saturation: the marginal gain shrinks.
    EXPECT_LT(s20 - s10, s2 - s1);
}

TEST(Bm25, LongDocumentsPenalized)
{
    Bm25Scorer s(100000, 100.0);
    EXPECT_GT(s.score(3, 50, 50), s.score(3, 400, 50));
}

TEST(Bm25, RareTermsWorthMore)
{
    Bm25Scorer s(100000, 100.0);
    EXPECT_GT(s.score(3, 100, 10), s.score(3, 100, 10000));
}

TEST(TopK, KeepsBestK)
{
    TopK t(3);
    for (float score : {1.f, 5.f, 3.f, 4.f, 2.f})
        t.offer({static_cast<DocId>(score), score});
    const auto r = t.results();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].score, 5.f);
    EXPECT_EQ(r[1].score, 4.f);
    EXPECT_EQ(r[2].score, 3.f);
}

TEST(TopK, ThresholdTracksMin)
{
    TopK t(2);
    EXPECT_EQ(t.threshold(), 0.0f);
    t.offer({1, 5.f});
    EXPECT_EQ(t.threshold(), 0.0f); // not full
    t.offer({2, 3.f});
    EXPECT_EQ(t.threshold(), 3.0f);
    t.offer({3, 4.f});
    EXPECT_EQ(t.threshold(), 4.0f);
}

TEST(TopK, RejectsBelowThreshold)
{
    TopK t(2);
    t.offer({1, 5.f});
    t.offer({2, 4.f});
    EXPECT_FALSE(t.offer({3, 1.f}));
    EXPECT_TRUE(t.offer({4, 6.f}));
}

TEST(TopK, DeterministicTieBreakByDocId)
{
    TopK t(2);
    t.offer({9, 1.f});
    t.offer({3, 1.f});
    t.offer({7, 1.f});
    const auto r = t.results();
    // Lower doc id wins ties.
    EXPECT_EQ(r[0].doc, 3u);
    EXPECT_EQ(r[1].doc, 7u);
}

TEST(TopK, MatchesFullSort)
{
    Rng rng(3);
    TopK t(16);
    std::vector<ScoredDoc> all;
    for (int i = 0; i < 5000; ++i) {
        const ScoredDoc sd{static_cast<DocId>(i),
                           static_cast<float>(rng.nextDouble())};
        all.push_back(sd);
        t.offer(sd);
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredDoc &a, const ScoredDoc &b) {
                  return b < a;
              });
    const auto r = t.results();
    ASSERT_EQ(r.size(), 16u);
    for (size_t i = 0; i < r.size(); ++i) {
        EXPECT_EQ(r[i].doc, all[i].doc);
        EXPECT_EQ(r[i].score, all[i].score);
    }
}

} // namespace
} // namespace wsearch
