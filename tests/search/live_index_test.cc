/**
 * Unit and property tests for the live index (search/live/): segment
 * sealing and the sparse IndexShard contract, commit-as-ack
 * semantics, two-phase deletes, merge compaction (including the
 * mid-merge crash path), snapshot checksums, and snapshot isolation.
 * The randomized model test cross-checks SnapshotSearcher visibility
 * against a plain map of what was committed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "search/live/live_index.hh"
#include "search/live/merge_worker.hh"
#include "search/live/snapshot_search.hh"

namespace wsearch {
namespace {

SearchRequest
probe(std::initializer_list<TermId> terms, bool conjunctive = false,
      uint32_t topk = 4096)
{
    SearchRequest req;
    req.query.id = 1;
    req.query.terms = terms;
    req.query.conjunctive = conjunctive;
    req.query.topK = topk;
    return req;
}

std::set<DocId>
docsOf(const SearchResponse &resp)
{
    std::set<DocId> out;
    for (const ScoredDoc &d : resp.docs)
        out.insert(d.doc);
    return out;
}

std::set<DocId>
searchDocs(SnapshotSearcher &s, const IndexSnapshot &snap, TermId term)
{
    return docsOf(s.search(snap, probe({term})));
}

TEST(LiveSegment, BuilderEncodesSparseShard)
{
    LiveSegmentBuilder b;
    b.addDoc(5, {1, 1, 2});
    b.addDoc(9, {2, 3});
    EXPECT_EQ(b.numDocs(), 2u);
    const auto seg = b.build(/*seal_version=*/7);

    EXPECT_EQ(seg->numDocs(), 2u);
    EXPECT_EQ(seg->numTerms(), 3u);
    EXPECT_EQ(seg->docLen(5), 3u);
    EXPECT_EQ(seg->docLen(9), 2u);
    EXPECT_EQ(seg->docLen(777), 0u); // absent doc: sparse space
    EXPECT_EQ(seg->termInfo(2).docFreq, 2u);
    EXPECT_EQ(seg->termInfo(1).docFreq, 1u);
    EXPECT_EQ(seg->termInfo(12345).docFreq, 0u); // absent term
    EXPECT_DOUBLE_EQ(seg->avgDocLen(), 2.5);
    EXPECT_EQ(seg->sealVersion(), 7u);
    EXPECT_TRUE(seg->contains(5));
    EXPECT_FALSE(seg->contains(6));

    const std::vector<DocId> want_docs = {5, 9};
    EXPECT_EQ(seg->docIds(), want_docs);
    const std::vector<TermId> want_terms = {1, 2, 3};
    EXPECT_EQ(seg->termIds(), want_terms);

    // postingView always lends storage, possibly empty.
    PostingView pv;
    EXPECT_TRUE(seg->postingView(2, pv));
    EXPECT_TRUE(seg->postingView(12345, pv));

    // Segment uids are process-unique (executor-cache keys).
    LiveSegmentBuilder b2;
    b2.addDoc(5, {1});
    EXPECT_NE(seg->uid(), b2.build(7)->uid());
}

TEST(LiveSegment, MutableBufferLifecycle)
{
    MutableSegment buf;
    buf.add(1, {10, 11});
    buf.add(2, {10});
    buf.add(1, {12}); // replace
    EXPECT_EQ(buf.numDocs(), 2u);
    EXPECT_TRUE(buf.contains(1));
    EXPECT_TRUE(buf.remove(2));
    EXPECT_FALSE(buf.remove(2));
    EXPECT_EQ(buf.numDocs(), 1u);
    EXPECT_GT(buf.approxBytes(), 0u);

    const auto seg = buf.seal(3);
    EXPECT_EQ(seg->numDocs(), 1u);
    EXPECT_EQ(seg->termInfo(12).docFreq, 1u);
    EXPECT_EQ(seg->termInfo(10).docFreq, 0u); // replaced away
    EXPECT_EQ(buf.numDocs(), 1u); // seal leaves the buffer intact

    buf.clear();
    EXPECT_EQ(buf.numDocs(), 0u);
    EXPECT_EQ(buf.approxBytes(), 0u);
}

TEST(LiveIndex, EmptySnapshotIsVersionZeroAndSearchable)
{
    LiveIndex idx;
    const auto snap = idx.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 0u);
    EXPECT_TRUE(snap->segments.empty());
    EXPECT_TRUE(snap->validate());
    EXPECT_EQ(idx.version(), 0u);

    SnapshotSearcher s(0);
    const SearchResponse r = s.search(*snap, probe({1, 2}));
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.docs.empty());

    // Nothing buffered: commit is a no-op at the current version.
    EXPECT_EQ(idx.commit(), 0u);
    EXPECT_EQ(idx.stats().commits, 0u);
}

TEST(LiveIndex, CommitIsTheAckPoint)
{
    LiveIndex idx;
    idx.add(1, {7, 100});
    idx.add(2, {7, 101});
    idx.add(3, {7, 102});

    // Unacked docs are buffered, not visible.
    SnapshotSearcher s(0);
    EXPECT_TRUE(searchDocs(s, *idx.snapshot(), 7).empty());
    EXPECT_EQ(idx.stats().bufferedDocs, 3u);

    const uint64_t v = idx.commit();
    EXPECT_GT(v, 0u);
    const auto snap = idx.snapshot();
    EXPECT_EQ(snap->version, v);
    EXPECT_TRUE(snap->validate());
    EXPECT_EQ(snap->liveDocs, 3u);
    EXPECT_EQ(searchDocs(s, *snap, 7), (std::set<DocId>{1, 2, 3}));
    EXPECT_EQ(searchDocs(s, *snap, 101), (std::set<DocId>{2}));

    const LiveStats st = idx.stats();
    EXPECT_EQ(st.docsAdded, 3u);
    EXPECT_EQ(st.commits, 1u);
    EXPECT_EQ(st.bufferedDocs, 0u);
    EXPECT_EQ(st.segments, 1u);
}

TEST(LiveIndex, UpdateReplacesAcrossSegments)
{
    LiveIndex idx;
    idx.add(1, {10});
    idx.commit();
    // Doc 1 now lives in a sealed segment; re-adding must supersede it.
    idx.add(1, {20});
    const uint64_t v = idx.commit();

    SnapshotSearcher s(0);
    const auto snap = idx.snapshot();
    EXPECT_EQ(snap->version, v);
    EXPECT_TRUE(searchDocs(s, *snap, 10).empty());
    EXPECT_EQ(searchDocs(s, *snap, 20), (std::set<DocId>{1}));
    EXPECT_EQ(snap->liveDocs, 1u);
    EXPECT_EQ(idx.stats().docsUpdated, 1u);
}

TEST(LiveIndex, RemoveIsTwoPhase)
{
    LiveIndex idx;
    idx.add(1, {7});
    idx.add(2, {7});
    idx.commit();

    EXPECT_TRUE(idx.remove(1));
    EXPECT_FALSE(idx.remove(1)); // already pending-removed
    EXPECT_FALSE(idx.remove(99)); // never existed

    // Pending tombstone: not yet published, doc still visible.
    SnapshotSearcher s(0);
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{1, 2}));

    // The next commit publishes (acks) it.
    const uint64_t v = idx.commit();
    const auto snap = idx.snapshot();
    EXPECT_EQ(snap->version, v);
    EXPECT_EQ(searchDocs(s, *snap, 7), (std::set<DocId>{2}));
    EXPECT_EQ(snap->liveDocs, 1u);
    EXPECT_EQ(snap->deletedDocs, 1u);
    EXPECT_EQ(idx.stats().docsRemoved, 1u);

    // Removing a doc still in the write buffer never needs a
    // tombstone at all.
    idx.add(3, {8});
    EXPECT_TRUE(idx.remove(3));
    idx.commit();
    EXPECT_TRUE(searchDocs(s, *idx.snapshot(), 8).empty());
}

TEST(LiveIndex, MergeCompactsWithoutChangingVisibility)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 3;
    cfg.mergeFanIn = 8;
    LiveIndex idx(cfg);

    // Four segments, forty docs, then delete a few (published).
    DocId next = 1;
    for (int seg = 0; seg < 4; ++seg) {
        for (int i = 0; i < 10; ++i, ++next)
            idx.add(next, {7, static_cast<TermId>(100 + next % 5)});
        idx.commit();
    }
    for (DocId d : {3u, 17u, 25u})
        EXPECT_TRUE(idx.remove(d));
    idx.commit();
    ASSERT_EQ(idx.stats().segments, 4u);
    ASSERT_EQ(idx.stats().deletedDocs, 3u);

    SnapshotSearcher s(0);
    std::vector<std::set<DocId>> before;
    for (TermId t = 100; t < 105; ++t)
        before.push_back(searchDocs(s, *idx.snapshot(), t));

    EXPECT_TRUE(idx.mergePending());
    const uint64_t v_before = idx.version();
    EXPECT_TRUE(idx.mergeOnce());
    EXPECT_GT(idx.version(), v_before);

    const LiveStats st = idx.stats();
    EXPECT_EQ(st.merges, 1u);
    EXPECT_EQ(st.segments, 1u);
    EXPECT_EQ(st.liveDocs, 37u);
    // Published tombstones against the inputs were purged, not
    // carried into the merged segment.
    EXPECT_EQ(st.deletedDocs, 0u);

    const auto snap = idx.snapshot();
    EXPECT_TRUE(snap->validate());
    for (TermId t = 100; t < 105; ++t)
        EXPECT_EQ(searchDocs(s, *snap, t), before[t - 100])
            << "term " << t;
}

TEST(LiveIndex, CrashedMergeLeavesInputsUntouched)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);
    idx.add(1, {7});
    idx.commit();
    idx.add(2, {7});
    idx.commit();

    const auto before = idx.snapshot();
    ASSERT_TRUE(idx.mergePending());
    EXPECT_FALSE(idx.mergeOnce([] { return true; }));

    // Abandoned: nothing published, inputs intact, crash counted.
    EXPECT_EQ(idx.version(), before->version);
    EXPECT_EQ(idx.snapshot().get(), before.get());
    EXPECT_EQ(idx.stats().mergesCrashed, 1u);
    EXPECT_EQ(idx.stats().merges, 0u);
    EXPECT_EQ(idx.stats().segments, 2u);

    // The same merge succeeds when re-run without the fault.
    EXPECT_TRUE(idx.mergeOnce());
    EXPECT_EQ(idx.stats().segments, 1u);
    SnapshotSearcher s(0);
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{1, 2}));
}

TEST(LiveIndex, PendingTombstoneRidesThroughMerge)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);
    idx.add(1, {7});
    idx.commit();
    idx.add(2, {7});
    idx.commit();

    // Unacked delete at merge time: the merge must carry the doc (a
    // merge never changes visibility), and the later commit must
    // still ack it against the *merged* segment.
    EXPECT_TRUE(idx.remove(1));
    EXPECT_TRUE(idx.mergeOnce());

    SnapshotSearcher s(0);
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{1, 2}));

    idx.commit();
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7), (std::set<DocId>{2}));
}

TEST(LiveIndex, DeletedFractionTriggersRewrite)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 100; // only the fraction trigger
    cfg.mergeTriggerDeletedFrac = 0.5;
    LiveIndex idx(cfg);
    for (DocId d = 1; d <= 10; ++d)
        idx.add(d, {7});
    idx.commit();
    EXPECT_FALSE(idx.mergePending());

    for (DocId d = 1; d <= 6; ++d)
        EXPECT_TRUE(idx.remove(d));
    idx.commit();
    EXPECT_TRUE(idx.mergePending()); // 6/10 > 0.5

    EXPECT_TRUE(idx.mergeOnce());
    const LiveStats st = idx.stats();
    EXPECT_EQ(st.liveDocs, 4u);
    EXPECT_EQ(st.deletedDocs, 0u); // dead docs purged by the rewrite
    SnapshotSearcher s(0);
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{7, 8, 9, 10}));
}

TEST(LiveIndex, AutoCommitSealsAtThreshold)
{
    LiveConfig cfg;
    cfg.autoCommitDocs = 4;
    LiveIndex idx(cfg);
    for (DocId d = 1; d <= 4; ++d)
        idx.add(d, {7});
    // The 4th add crossed the threshold: acked without an explicit
    // commit().
    EXPECT_GE(idx.stats().commits, 1u);
    EXPECT_EQ(idx.stats().bufferedDocs, 0u);
    SnapshotSearcher s(0);
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{1, 2, 3, 4}));
}

TEST(IndexSnapshot, ChecksumDetectsCorruption)
{
    LiveIndex idx;
    idx.add(1, {7});
    idx.add(2, {8});
    idx.commit();
    idx.remove(2);
    idx.commit();

    const auto snap = idx.snapshot();
    EXPECT_TRUE(snap->validate());
    EXPECT_EQ(snap->checksum, snap->computeChecksum());

    const auto torn = snap->corruptedCopy();
    ASSERT_NE(torn, nullptr);
    EXPECT_FALSE(torn->validate());
    EXPECT_TRUE(snap->validate()); // original untouched
}

TEST(IndexSnapshot, IsolationAcrossCommitsAndMerges)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);
    idx.add(1, {7});
    idx.add(2, {7});
    const uint64_t v1 = idx.commit();
    const auto old_snap = idx.snapshot();

    // Mutate heavily after the capture: delete, add, merge.
    idx.remove(1);
    idx.add(3, {7});
    idx.commit();
    idx.mergeOnce();
    ASSERT_GT(idx.version(), v1);

    // The captured snapshot still answers exactly as of v1.
    SnapshotSearcher s(0);
    EXPECT_EQ(old_snap->version, v1);
    EXPECT_TRUE(old_snap->validate());
    EXPECT_EQ(searchDocs(s, *old_snap, 7), (std::set<DocId>{1, 2}));
    EXPECT_EQ(searchDocs(s, *idx.snapshot(), 7),
              (std::set<DocId>{2, 3}));
}

TEST(LiveIndex, VersionsStrictlyIncreaseAcrossPublications)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);
    std::vector<uint64_t> versions;
    DocId next = 1;
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 3; ++i, ++next)
            idx.add(next, {7});
        versions.push_back(idx.commit());
        if (idx.mergePending() && idx.mergeOnce())
            versions.push_back(idx.version());
    }
    for (size_t i = 1; i < versions.size(); ++i)
        EXPECT_LT(versions[i - 1], versions[i]);
    EXPECT_EQ(idx.version(), versions.back());
}

TEST(SnapshotSearcher, ExecutorCacheFollowsSegments)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 4;
    LiveIndex idx(cfg);
    SnapshotSearcher s(0);
    DocId next = 1;
    for (int seg = 0; seg < 4; ++seg) {
        for (int i = 0; i < 5; ++i, ++next)
            idx.add(next, {7});
        idx.commit();
        s.search(*idx.snapshot(), probe({7}));
    }
    // One cached executor per live segment seen.
    EXPECT_EQ(s.cachedSegments(), 4u);

    // After the merge collapses them, the searcher drops the dead
    // executors on its next search.
    ASSERT_TRUE(idx.mergeOnce());
    const auto r = s.search(*idx.snapshot(), probe({7}));
    EXPECT_EQ(r.docs.size(), 20u);
    EXPECT_EQ(s.cachedSegments(), 1u);
}

TEST(LiveIndex, PackedCodecSurvivesSealAndMerge)
{
    // cfg.codec threads through every publication path: the seal in
    // commit() and the rewrite in mergeOnce() must both emit packed
    // segments, and the packed index must stay search-identical to a
    // varint twin fed the same ops.
    LiveConfig packed_cfg, varint_cfg;
    packed_cfg.codec = PostingCodec::kPacked;
    packed_cfg.mergeTriggerSegments = varint_cfg.mergeTriggerSegments =
        2;
    LiveIndex packed(packed_cfg), varint(varint_cfg);

    DocId next = 1;
    for (int seg = 0; seg < 3; ++seg) {
        // >128 postings per term per segment so packed lists span
        // multiple blocks plus a short tail.
        for (int i = 0; i < 150; ++i, ++next) {
            const std::vector<TermId> terms = {
                7, static_cast<TermId>(100 + next % 3)};
            packed.add(next, terms);
            varint.add(next, terms);
        }
        packed.commit();
        varint.commit();
    }
    packed.remove(5);
    varint.remove(5);
    packed.commit();
    varint.commit();

    const auto sealed = packed.snapshot();
    ASSERT_FALSE(sealed->segments.empty());
    for (const auto &seg : sealed->segments)
        EXPECT_EQ(seg.segment->codec(), PostingCodec::kPacked);

    SnapshotSearcher sp(0), sv(0);
    for (TermId t : {7u, 100u, 101u, 102u})
        EXPECT_EQ(searchDocs(sp, *sealed, t),
                  searchDocs(sv, *varint.snapshot(), t))
            << "term " << t;

    // Merge re-encodes through a PostingCursor walk of the packed
    // byte streams; the merged segment must be packed too.
    ASSERT_TRUE(packed.mergePending());
    ASSERT_TRUE(packed.mergeOnce());
    ASSERT_TRUE(varint.mergeOnce());
    const auto merged = packed.snapshot();
    ASSERT_TRUE(merged->validate());
    ASSERT_EQ(merged->segments.size(), 1u);
    EXPECT_EQ(merged->segments[0].segment->codec(),
              PostingCodec::kPacked);
    for (TermId t : {7u, 100u, 101u, 102u})
        EXPECT_EQ(searchDocs(sp, *merged, t),
                  searchDocs(sv, *varint.snapshot(), t))
            << "term " << t;
}

/**
 * Randomized model check: a few hundred interleaved adds, updates,
 * removes, commits, and merges; after every commit the snapshot must
 * answer term probes exactly like the committed map.
 */
TEST(LiveIndex, RandomizedOpsMatchModel)
{
    constexpr TermId kVocab = 12;
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 3;
    LiveIndex idx(cfg);
    SnapshotSearcher searcher(0);

    std::mt19937_64 rng(0x11fe5eedull);
    std::unordered_map<DocId, std::vector<TermId>> committed, pending;
    std::set<DocId> pending_removes;
    auto rand_terms = [&rng] {
        std::vector<TermId> t(1 + rng() % 4);
        for (TermId &x : t)
            x = static_cast<TermId>(rng() % kVocab);
        return t;
    };

    auto verify = [&] {
        const auto snap = idx.snapshot();
        ASSERT_TRUE(snap->validate());
        for (TermId t = 0; t < kVocab; ++t) {
            std::set<DocId> want;
            for (const auto &kv : committed)
                if (std::find(kv.second.begin(), kv.second.end(), t) !=
                    kv.second.end())
                    want.insert(kv.first);
            const SearchResponse r = searcher.search(*snap, probe({t}));
            EXPECT_EQ(docsOf(r), want) << "term " << t;
            for (size_t i = 1; i < r.docs.size(); ++i)
                EXPECT_GE(r.docs[i - 1].score, r.docs[i].score);
        }
        EXPECT_EQ(snap->liveDocs, committed.size());
    };

    for (int op = 0; op < 600; ++op) {
        const uint64_t roll = rng() % 100;
        if (roll < 55) {
            const DocId d = static_cast<DocId>(1 + rng() % 80);
            const auto terms = rand_terms();
            idx.add(d, terms);
            pending[d] = terms;
            pending_removes.erase(d);
        } else if (roll < 75) {
            const DocId d = static_cast<DocId>(1 + rng() % 80);
            const bool known =
                (pending.count(d) != 0 ||
                 (committed.count(d) != 0 &&
                  pending_removes.count(d) == 0));
            EXPECT_EQ(idx.remove(d), known) << "doc " << d;
            pending.erase(d);
            if (committed.count(d))
                pending_removes.insert(d);
        } else if (roll < 90) {
            idx.commit();
            for (auto &kv : pending)
                committed[kv.first] = kv.second;
            for (DocId d : pending_removes)
                committed.erase(d);
            pending.clear();
            pending_removes.clear();
            verify();
        } else {
            const bool crash = (rng() % 4) == 0;
            idx.mergeOnce([crash] { return crash; });
            // Merges never change visibility; spot-check one term.
            const auto snap = idx.snapshot();
            ASSERT_TRUE(snap->validate());
        }
    }
    idx.commit();
    for (auto &kv : pending)
        committed[kv.first] = kv.second;
    for (DocId d : pending_removes)
        committed.erase(d);
    pending.clear();
    pending_removes.clear();
    verify();

    const LiveStats st = idx.stats();
    EXPECT_GT(st.commits, 0u);
    EXPECT_GT(st.docsAdded, 0u);
}

} // namespace
} // namespace wsearch
