#include <gtest/gtest.h>

#include "core/amat_model.hh"
#include "core/area_model.hh"
#include "core/hit_curve.hh"

namespace wsearch {
namespace {

TEST(AmatModel, NoL4)
{
    AmatModel m;
    m.tL3Ns = 20;
    m.tMemNs = 120;
    EXPECT_DOUBLE_EQ(m.amat(1.0), 20.0);
    EXPECT_DOUBLE_EQ(m.amat(0.0), 120.0);
    EXPECT_DOUBLE_EQ(m.amat(0.5), 70.0);
}

TEST(AmatModel, WithL4)
{
    AmatModel m;
    m.tL3Ns = 20;
    m.tL4Ns = 40;
    m.tMemNs = 120;
    // Perfect L4: miss path costs t_L4.
    EXPECT_DOUBLE_EQ(m.amatWithL4(0.5, 1.0), 0.5 * 20 + 0.5 * 40);
    // Useless L4 with parallel tag check: same as no L4.
    EXPECT_DOUBLE_EQ(m.amatWithL4(0.5, 0.0), m.amat(0.5));
}

TEST(AmatModel, SerializedMissPenalty)
{
    AmatModel m;
    m.l4MissExtraNs = 5.0;
    EXPECT_GT(m.amatWithL4(0.5, 0.0), m.amat(0.5));
    EXPECT_DOUBLE_EQ(m.amatWithL4(0.5, 0.0) - m.amat(0.5), 0.5 * 5.0);
}

TEST(AmatModel, FutureRaisesMemoryLatency)
{
    const AmatModel m;
    const AmatModel f = m.future();
    EXPECT_DOUBLE_EQ(f.tMemNs, m.tMemNs * 1.10);
    EXPECT_GT(f.amat(0.5), m.amat(0.5));
}

TEST(IpcModel, PaperEq1)
{
    const IpcModel eq1 = IpcModel::paperEq1();
    // Spot values from the paper's Figure 8b regime.
    EXPECT_NEAR(eq1.ipc(50), 1.349, 1e-3);
    EXPECT_NEAR(eq1.ipc(70), 1.1766, 1e-3);
    EXPECT_GT(eq1.ipc(50), eq1.ipc(70));
}

TEST(IpcModel, FitRecoversLine)
{
    std::vector<double> amat, ipc;
    for (double a = 45; a <= 75; a += 5) {
        amat.push_back(a);
        ipc.push_back(-8.62e-3 * a + 1.78);
    }
    const IpcModel fit = IpcModel::fit(amat, ipc);
    EXPECT_NEAR(fit.slope, -8.62e-3, 1e-9);
    EXPECT_NEAR(fit.intercept, 1.78, 1e-9);
}

TEST(AreaModel, PaperBaseline)
{
    const AreaModel a;
    // 18 cores at 2.5 MiB/core: 18 * (4 + 2.5) = 117 L3-eq MiB.
    EXPECT_DOUBLE_EQ(a.area(18, 2.5), 117.0);
    // At c = 1: 117 / 5 = 23.4 -> 23 whole cores (the paper's 23).
    EXPECT_NEAR(a.coresForArea(117.0, 1.0), 23.4, 1e-9);
    EXPECT_EQ(a.coresForAreaQuantized(117.0, 1.0), 23u);
}

TEST(AreaModel, MoreCachePerCoreFewerCores)
{
    const AreaModel a;
    EXPECT_GT(a.coresForArea(117, 0.5), a.coresForArea(117, 2.5));
}

TEST(HitRateCurve, InterpolatesAndClamps)
{
    HitRateCurve c;
    c.addPoint(4 << 20, 0.4);
    c.addPoint(16 << 20, 0.8);
    EXPECT_DOUBLE_EQ(c.hitRate(4 << 20), 0.4);
    EXPECT_DOUBLE_EQ(c.hitRate(16 << 20), 0.8);
    // Log-size midpoint (8 MiB) interpolates to the middle.
    EXPECT_NEAR(c.hitRate(8 << 20), 0.6, 1e-9);
    // Clamping outside the range.
    EXPECT_DOUBLE_EQ(c.hitRate(1 << 20), 0.4);
    EXPECT_DOUBLE_EQ(c.hitRate(1u << 30), 0.8);
}

TEST(HitRateCurve, UnsortedInsertOk)
{
    HitRateCurve c;
    c.addPoint(64 << 20, 0.9);
    c.addPoint(1 << 20, 0.1);
    c.addPoint(8 << 20, 0.5);
    EXPECT_DOUBLE_EQ(c.hitRate(1 << 20), 0.1);
    EXPECT_DOUBLE_EQ(c.hitRate(64 << 20), 0.9);
    EXPECT_GT(c.hitRate(16 << 20), c.hitRate(4 << 20));
}

} // namespace
} // namespace wsearch
