#include <gtest/gtest.h>

#include "core/power_model.hh"

namespace wsearch {
namespace {

TEST(Power, BaselineIsSelfConsistent)
{
    const PowerModel p;
    EXPECT_NEAR(p.socketWatts(18), p.baselineSocketWatts, 1e-9);
    EXPECT_NEAR(p.powerIncrease(18), 0.0, 1e-12);
}

TEST(Power, PaperFiveExtraCores)
{
    // Paper: 5 additional cores -> ~18.9% socket power increase.
    const PowerModel p;
    EXPECT_NEAR(p.powerIncrease(23), 0.189, 0.002);
}

TEST(Power, LinearInCores)
{
    const PowerModel p;
    const double d1 = p.socketWatts(19) - p.socketWatts(18);
    const double d2 = p.socketWatts(24) - p.socketWatts(23);
    EXPECT_NEAR(d1, d2, 1e-9);
    EXPECT_GT(d1, 0.0);
}

TEST(Power, L4FilteringReducesMemoryPower)
{
    const PowerModel p;
    EXPECT_DOUBLE_EQ(p.memoryPowerScale(0.0), 1.0);
    EXPECT_LT(p.memoryPowerScale(0.5), 1.0);
    EXPECT_LT(p.memoryPowerScale(0.9), p.memoryPowerScale(0.5));
}

TEST(Power, CacheForCoresIsRoughlyEnergyNeutral)
{
    // Linear power increase vs linear performance increase: energy
    // per query stays near 1.0 (paper's energy-neutrality argument).
    const PowerModel p;
    const double e = p.energyPerQuery(23, 23.0 / 18.0);
    EXPECT_NEAR(e, 1.0, 0.10);
}

TEST(Power, L4ImprovesEnergyPerQuery)
{
    const PowerModel p;
    const double without = p.energyPerQuery(23, 1.14);
    const double with_l4 = p.energyPerQuery(23, 1.27, 0.5);
    EXPECT_LT(with_l4, without);
    EXPECT_LT(with_l4, 1.0);
}

} // namespace
} // namespace wsearch
