#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

/** Small budgets so the full suite stays fast. */
RunOptions
smallOpt(uint64_t l3_bytes)
{
    RunOptions opt;
    opt.cores = 4;
    opt.l3Bytes = l3_bytes;
    opt.measureRecords = 60'000;
    opt.warmupRecords = 30'000;
    return opt;
}

void
expectSystemEq(const SystemResult &a, const SystemResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.dtlbWalks, b.dtlbWalks);
    EXPECT_EQ(a.itlbWalks, b.itlbWalks);
    const CacheLevelStats *as[] = {&a.l1i, &a.l1d, &a.l2, &a.l3, &a.l4};
    const CacheLevelStats *bs[] = {&b.l1i, &b.l1d, &b.l2, &b.l3, &b.l4};
    for (int lvl = 0; lvl < 5; ++lvl) {
        for (uint32_t k = 0; k < kNumAccessKinds; ++k) {
            ASSERT_EQ(as[lvl]->accesses[k], bs[lvl]->accesses[k])
                << "level " << lvl << " kind " << k;
            ASSERT_EQ(as[lvl]->misses[k], bs[lvl]->misses[k])
                << "level " << lvl << " kind " << k;
        }
    }
    EXPECT_EQ(a.l3Evictions, b.l3Evictions);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.backInvalidations, b.backInvalidations);
    EXPECT_EQ(a.cohUpgrades, b.cohUpgrades);
    EXPECT_EQ(a.cohInvalidations, b.cohInvalidations);
    EXPECT_EQ(a.cohDirtyWritebacks, b.cohDirtyWritebacks);
    EXPECT_DOUBLE_EQ(a.topdown.total(), b.topdown.total());
    EXPECT_DOUBLE_EQ(a.ipcPerThread, b.ipcPerThread);
    EXPECT_DOUBLE_EQ(a.amatL3Ns, b.amatL3Ns);
}

TEST(WorkloadSweep, BitIdenticalToSerialRunWorkloadAtAnyThreadCount)
{
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt = PlatformConfig::plt1();

    std::vector<RunOptions> options = {
        smallOpt(1 * MiB), smallOpt(4 * MiB), smallOpt(16 * MiB)};
    // A variation with an L4 and one with TLB modeling, same thread
    // count (shares the buffer)...
    RunOptions with_l4 = smallOpt(2 * MiB);
    with_l4.l4 = cache_gen_victim(8 * MiB, 64);
    options.push_back(with_l4);
    RunOptions with_tlb = smallOpt(2 * MiB);
    with_tlb.modelTlb = true;
    options.push_back(with_tlb);
    // ...and a different core count, forcing a second trace group.
    RunOptions other_cores = smallOpt(4 * MiB);
    other_cores.cores = 2;
    other_cores.smtWays = 2;
    options.push_back(other_cores);

    std::vector<SystemResult> oracle;
    for (const RunOptions &opt : options)
        oracle.push_back(runWorkload(prof, plt, opt));

    for (const uint32_t threads : {1u, 4u}) {
        SweepControl control;
        control.threads = threads;
        const std::vector<SystemResult> got =
            runWorkloadSweep(prof, plt, options, control);
        ASSERT_EQ(got.size(), options.size());
        for (size_t i = 0; i < options.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " option=" + std::to_string(i));
            expectSystemEq(got[i], oracle[i]);
            EXPECT_EQ(got[i].sampledWindows, 0u);
        }
    }
}

TEST(WorkloadSweep, RunWorkloadsMatchesSerialPerSpecRuns)
{
    std::vector<WorkloadSpec> specs;
    specs.push_back({WorkloadProfile::s1Leaf(),
                     PlatformConfig::plt1(), smallOpt(2 * MiB)});
    specs.push_back({WorkloadProfile::s1Root(),
                     PlatformConfig::plt1(), smallOpt(4 * MiB)});
    RunOptions plt2_opt = smallOpt(2 * MiB);
    plt2_opt.cores = 2;
    specs.push_back({WorkloadProfile::s2Leaf(),
                     PlatformConfig::plt2(), plt2_opt});

    const std::vector<SystemResult> par = runWorkloads(specs, 3);
    ASSERT_EQ(par.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE("spec=" + std::to_string(i));
        expectSystemEq(par[i],
                       runWorkload(specs[i].profile,
                                   specs[i].platform, specs[i].opt));
    }
}

TEST(WorkloadSweep, SampledModeReportsWindowsAndApproximatesExact)
{
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    const PlatformConfig plt = PlatformConfig::plt1();
    std::vector<RunOptions> options = {smallOpt(4 * MiB)};

    SweepControl control;
    control.threads = 1;
    control.sampling.periodRecords = 30'000;
    control.sampling.warmupRecords = 5'000;
    control.sampling.measureRecords = 10'000;
    const std::vector<SystemResult> sampled =
        runWorkloadSweep(prof, plt, options, control);
    ASSERT_EQ(sampled.size(), 1u);
    // 90k total records -> 3 windows of 10k measured each.
    EXPECT_EQ(sampled[0].sampledWindows, 3u);
    EXPECT_EQ(sampled[0].instructions, 30'000u);

    // The estimate should be in the neighbourhood of the exact run
    // (loose bound; this guards gross accounting bugs, not accuracy).
    const SystemResult exact = runWorkload(prof, plt, options[0]);
    EXPECT_EQ(exact.sampledWindows, 0u);
    EXPECT_GT(sampled[0].ipcPerThread, 0.25 * exact.ipcPerThread);
    EXPECT_LT(sampled[0].ipcPerThread, 4.0 * exact.ipcPerThread);
}

TEST(WorkloadSweep, HitCurvesComeBackOrdered)
{
    // l3HitCurve rides the sweep engine now; sanity-check the curve
    // is keyed by the requested sizes and monotone-ish in capacity.
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    RunOptions opt = smallOpt(0);
    opt.l3Bytes.reset();
    const std::vector<uint64_t> sizes = {512 * KiB, 2 * MiB, 8 * MiB};
    const HitRateCurve curve =
        l3HitCurve(prof, PlatformConfig::plt1(), opt, sizes);
    EXPECT_LE(curve.hitRate(512 * KiB), curve.hitRate(8 * MiB) + 1e-9);
}

} // namespace
} // namespace wsearch
