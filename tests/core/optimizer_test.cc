#include <gtest/gtest.h>

#include "core/l4_evaluator.hh"
#include "core/optimizer.hh"

namespace wsearch {
namespace {

/** A paper-like L3 hit curve: rises from ~50% at 9 MiB to ~73% at
 *  45 MiB (the Figure 8a CAT domain). */
HitRateCurve
paperLikeL3Curve()
{
    HitRateCurve c;
    c.addPoint(4608ull << 10, 0.46); // 4.5 MiB
    c.addPoint(9ull << 20, 0.53);
    c.addPoint(18ull << 20, 0.62);
    c.addPoint(27ull << 20, 0.67);
    c.addPoint(36ull << 20, 0.70);
    c.addPoint(45ull << 20, 0.73);
    return c;
}

CacheForCoresOptimizer
makeOptimizer()
{
    return CacheForCoresOptimizer(AreaModel{}, AmatModel{},
                                  IpcModel::paperEq1(),
                                  paperLikeL3Curve());
}

TEST(Optimizer, BaselineIsNeutral)
{
    const CacheForCoresOptimizer opt = makeOptimizer();
    EXPECT_NEAR(opt.relativeQps(18, 2.5), 1.0, 1e-12);
    const TradeoffPoint p = opt.evaluate(2.5);
    EXPECT_EQ(p.coresQuantized, 18u);
    EXPECT_NEAR(p.qpsQuantized, 0.0, 1e-9);
}

TEST(Optimizer, SweepCoversPaperRange)
{
    const auto points = makeOptimizer().sweep();
    ASSERT_EQ(points.size(), 8u);
    EXPECT_DOUBLE_EQ(points.front().l3MibPerCore, 2.25);
    EXPECT_NEAR(points.back().l3MibPerCore, 0.5, 1e-9);
}

TEST(Optimizer, TradingCacheForCoresWinsOnPaperCurve)
{
    // With the paper-like hit curve, c = 1 MiB/core must beat the
    // baseline and land near the paper's 23 cores / +14%.
    const TradeoffPoint p = makeOptimizer().evaluate(1.0);
    EXPECT_EQ(p.coresQuantized, 23u);
    EXPECT_GT(p.qpsQuantized, 0.05);
    EXPECT_LT(p.qpsQuantized, 0.30);
}

TEST(Optimizer, IdealUpperBoundsQuantized)
{
    for (const TradeoffPoint &p : makeOptimizer().sweep())
        EXPECT_GE(p.qpsIdeal, p.qpsQuantized - 1e-12);
}

TEST(Optimizer, DecompositionSigns)
{
    const TradeoffPoint p = makeOptimizer().evaluate(1.0);
    EXPECT_GT(p.gainFromCores, 0.0); // more cores at smaller c
    EXPECT_LT(p.lossFromCache, 0.0); // smaller L3 hurts IPC
}

TEST(Optimizer, BestPicksMaxQuantized)
{
    const CacheForCoresOptimizer opt = makeOptimizer();
    const TradeoffPoint best = opt.best();
    for (const TradeoffPoint &p : opt.sweep())
        EXPECT_GE(best.qpsQuantized, p.qpsQuantized - 1e-12);
}

L4EvalInputs
paperLikeInputs()
{
    L4EvalInputs in;
    in.baselineHitL3 = 0.73;
    in.rightsizedHitL3 = 0.64;
    for (uint64_t s = 128ull << 20; s <= 8ull << 30; s *= 2) {
        // Paper-like L4 curve: ~30% at 128 MiB to ~60% at 8 GiB.
        const double h = 0.30 + 0.05 * (log2(double(s)) - 27);
        in.l4Direct.addPoint(s, h);
        in.l4Assoc.addPoint(s, h + 0.01); // FA ~1pp better
    }
    return in;
}

TEST(L4Eval, RightsizingAloneNearPaper)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    const double d = eval.rightsizeOnlyImprovement();
    EXPECT_GT(d, 0.05);
    EXPECT_LT(d, 0.25);
}

TEST(L4Eval, BiggerL4Better)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    const L4Scenario sc = L4Scenario::baseline();
    EXPECT_LT(eval.improvement(sc, 128ull << 20),
              eval.improvement(sc, 1ull << 30));
    EXPECT_LT(eval.improvement(sc, 1ull << 30),
              eval.improvement(sc, 8ull << 30));
}

TEST(L4Eval, PessimisticWorseThanBaseline)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    EXPECT_LT(eval.improvement(L4Scenario::pessimistic(), 1ull << 30),
              eval.improvement(L4Scenario::baseline(), 1ull << 30));
}

TEST(L4Eval, AssociativeSlightlyBetter)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    const double dm =
        eval.improvement(L4Scenario::baseline(), 1ull << 30);
    const double fa =
        eval.improvement(L4Scenario::associativeL4(), 1ull << 30);
    EXPECT_GT(fa, dm);
    EXPECT_LT(fa - dm, 0.05); // ~1 percentage point in the paper
}

TEST(L4Eval, FutureScenarioAmplifiesBenefit)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    EXPECT_GT(eval.improvement(L4Scenario::futureGen(), 1ull << 30),
              eval.improvement(L4Scenario::baseline(), 1ull << 30));
}

TEST(L4Eval, L4AlwaysBeatsRightsizingAlone)
{
    const L4Evaluator eval(paperLikeInputs(), AmatModel{},
                           IpcModel::paperEq1());
    const double alone = eval.rightsizeOnlyImprovement();
    for (uint64_t s = 128ull << 20; s <= 2ull << 30; s *= 2)
        EXPECT_GT(eval.improvement(L4Scenario::baseline(), s), alone);
}

} // namespace
} // namespace wsearch
