#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/platform.hh"

namespace wsearch {
namespace {

TEST(Platform, TableIIAttributes)
{
    const PlatformConfig p1 = PlatformConfig::plt1();
    EXPECT_EQ(p1.sockets, 2u);
    EXPECT_EQ(p1.coresPerSocket, 18u);
    EXPECT_EQ(p1.smtWays, 2u);
    EXPECT_EQ(p1.cacheBlockBytes, 64u);
    EXPECT_EQ(p1.l2Bytes, 256 * KiB);
    EXPECT_EQ(p1.l3Bytes, 45 * MiB);
    EXPECT_EQ(p1.l3Ways, 20u);

    const PlatformConfig p2 = PlatformConfig::plt2();
    EXPECT_EQ(p2.coresPerSocket, 12u);
    EXPECT_EQ(p2.smtWays, 8u);
    EXPECT_EQ(p2.cacheBlockBytes, 128u);
    EXPECT_EQ(p2.l1dBytes, 64 * KiB);
    EXPECT_EQ(p2.l2Bytes, 512 * KiB);
    EXPECT_EQ(p2.l3Bytes, 96 * MiB);
}

TEST(Platform, HierarchyBuilder)
{
    const PlatformConfig p1 = PlatformConfig::plt1();
    const HierarchySpec h = p1.hierarchy(16, 2, 10);
    EXPECT_EQ(h.numCores, 16u);
    EXPECT_EQ(h.smtWays, 2u);
    EXPECT_EQ(h.llc.cache.sizeBytes, 45 * MiB);
    EXPECT_EQ(h.llc.cache.partitionWays, 10u);
    EXPECT_EQ(h.l1i.cache.blockBytes, 64u);
}

TEST(Platform, CoreParamsApplyProfileTweaks)
{
    const PlatformConfig p1 = PlatformConfig::plt1();
    WorkloadProfile prof = WorkloadProfile::s1Leaf();
    prof.cpu.postL2Exposure = 0.42;
    const CoreModelParams c = p1.coreParams(prof);
    EXPECT_DOUBLE_EQ(c.tweaks.postL2Exposure, 0.42);
    EXPECT_EQ(c.width, p1.width);
    EXPECT_DOUBLE_EQ(c.memNs, p1.memNs);
}

TEST(Platform, SystemBuilderWiresL4)
{
    const PlatformConfig p1 = PlatformConfig::plt1();
    const SystemConfig s = p1.system(WorkloadProfile::s1Leaf(), 8, 1, 0,
                                     cache_gen_victim(256 * MiB, 64));
    ASSERT_TRUE(s.hierarchy.l4.has_value());
    EXPECT_EQ(s.hierarchy.l4->cache.sizeBytes, 256 * MiB);
}

TEST(Experiments, RunWorkloadRespectsOverrides)
{
    WorkloadProfile prof = WorkloadProfile::s1Leaf();
    prof.code.footprintBytes = 128 * KiB;
    prof.heapWorkingSetBytes = 4 * MiB;
    RunOptions opt;
    opt.cores = 2;
    opt.l3Bytes = 1 * MiB;
    opt.measureRecords = 300'000;
    const SystemResult r =
        runWorkload(prof, PlatformConfig::plt1(), opt);
    EXPECT_EQ(r.instructions, traceBudget(300'000));
    EXPECT_GT(r.ipcPerThread, 0.0);
}

TEST(Experiments, L3HitCurveMonotone)
{
    WorkloadProfile prof = WorkloadProfile::s1Leaf();
    prof.code.footprintBytes = 256 * KiB;
    prof.heapWorkingSetBytes = 8 * MiB;
    prof.heapHotFrac = 0.4;
    prof.heapWarmFrac = 0.1;
    RunOptions opt;
    opt.cores = 2;
    opt.measureRecords = 600'000;
    const HitRateCurve curve = l3HitCurve(
        prof, PlatformConfig::plt1(), opt,
        {512 * KiB, 2 * MiB, 8 * MiB, 32 * MiB});
    EXPECT_GT(curve.hitRate(32 * MiB), curve.hitRate(512 * KiB));
}

TEST(Experiments, L4HitCurveGrowsWithCapacity)
{
    WorkloadProfile prof = WorkloadProfile::s1Leaf();
    prof.code.footprintBytes = 128 * KiB;
    prof.heapWorkingSetBytes = 8 * MiB;
    prof.heapHotFrac = 0.3;
    prof.heapWarmFrac = 0.1;
    RunOptions opt;
    opt.cores = 2;
    opt.l3Bytes = 512 * KiB;
    opt.measureRecords = 800'000;
    opt.warmupRecords = 1'600'000;
    const HitRateCurve curve =
        l4HitCurve(prof, PlatformConfig::plt1(), opt,
                   {1 * MiB, 16 * MiB}, false);
    EXPECT_GT(curve.hitRate(16 * MiB), curve.hitRate(1 * MiB));
}

} // namespace
} // namespace wsearch
