#include <gtest/gtest.h>

#include "memsim/cache.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

CacheConfig
srripCache(uint64_t size = 4 * KiB, uint32_t ways = 4)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.blockBytes = 64;
    c.ways = ways;
    c.repl = ReplPolicy::SRRIP;
    return c;
}

TEST(Srrip, BasicMissThenHit)
{
    SetAssocCache c(srripCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
}

TEST(Srrip, CapacityRespected)
{
    SetAssocCache c(srripCache(2 * KiB, 8));
    Rng rng(1);
    for (int i = 0; i < 20000; ++i)
        c.access(rng.nextRange(1 << 18) * 64, false);
    EXPECT_LE(c.population(), 32u);
}

TEST(Srrip, ReReferencedLinesSurviveScans)
{
    // The defining SRRIP property: a hot line re-referenced between
    // streaming scans survives them, where LRU would evict it.
    auto hot_hits = [](ReplPolicy repl) {
        CacheConfig cfg = srripCache(4 * KiB, 4); // 16 sets
        cfg.repl = repl;
        SetAssocCache c(cfg);
        const uint64_t hot = 0; // set 0
        c.access(hot, false);
        c.access(hot, false); // promote to near re-reference
        uint64_t hits = 0;
        uint64_t scan = 16 * 64; // walk set 0 with fresh blocks
        for (int round = 0; round < 200; ++round) {
            // Four fresh conflicting blocks per round: enough to push
            // the hot line out under LRU.
            for (int i = 0; i < 4; ++i) {
                c.access(scan, false);
                scan += 16 * 64;
            }
            if (c.access(hot, false))
                ++hits;
        }
        return hits;
    };
    EXPECT_GT(hot_hits(ReplPolicy::SRRIP), hot_hits(ReplPolicy::LRU));
}

TEST(Srrip, ZipfHitRateAtLeastCompetitive)
{
    auto hit_rate = [](ReplPolicy repl) {
        CacheConfig cfg = srripCache(16 * KiB, 8);
        cfg.repl = repl;
        SetAssocCache c(cfg);
        ZipfSampler z(16384, 0.8);
        Rng rng(3);
        uint64_t hits = 0;
        const int n = 300000;
        for (int i = 0; i < n; ++i)
            if (c.access(z.sample(rng) * 64, false))
                ++hits;
        return static_cast<double>(hits) / n;
    };
    EXPECT_GT(hit_rate(ReplPolicy::SRRIP),
              hit_rate(ReplPolicy::LRU) - 0.02);
}

TEST(Srrip, WorksWithPartitioning)
{
    CacheConfig cfg = srripCache(4 * KiB, 4);
    cfg.partitionWays = 2;
    SetAssocCache c(cfg);
    const uint64_t stride = 16 * 64;
    c.access(0, false);
    c.access(stride, false);
    uint64_t evicted = kNoBlock;
    c.access(2 * stride, false, &evicted);
    EXPECT_NE(evicted, kNoBlock); // only 2 ways usable
}

} // namespace
} // namespace wsearch
