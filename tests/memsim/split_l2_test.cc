#include <gtest/gtest.h>

#include "memsim/hierarchy.hh"

namespace wsearch {
namespace {

HierarchyConfig
splitConfig(uint32_t instr_ways)
{
    HierarchyConfig h;
    h.l1i = {1 * KiB, 64, 4};
    h.l1d = {1 * KiB, 64, 4};
    h.l2 = {8 * KiB, 64, 8};
    h.l2InstrPartitionWays = instr_ways;
    h.l3 = {64 * KiB, 64, 8};
    return h;
}

TEST(SplitL2, UnifiedSharesCapacity)
{
    CacheHierarchy h(splitConfig(0));
    // Instruction fill is visible to... the same unified L2: a data
    // access to the same block hits at L2 after L1-D miss.
    h.accessInstr(0, 0x400000);
    EXPECT_EQ(h.accessData(0, 0, 0x400000, false, AccessKind::Heap),
              HitLevel::L2);
}

TEST(SplitL2, PartitionsAreIsolated)
{
    CacheHierarchy h(splitConfig(4));
    // With a split L2, an instruction fill lands in the I partition;
    // the data side must miss past L2 (it hits the shared L3, which
    // the instruction path filled).
    h.accessInstr(0, 0x400000);
    EXPECT_EQ(h.accessData(0, 0, 0x400000, false, AccessKind::Heap),
              HitLevel::L3);
}

TEST(SplitL2, InstrPartitionHoldsCode)
{
    CacheHierarchy h(splitConfig(4));
    h.accessInstr(0, 0x400000);
    // Evict from L1-I by filling its set, then re-fetch: must hit the
    // L2 instruction partition.
    for (int i = 1; i <= 4; ++i)
        h.accessInstr(0, 0x400000 + i * 4 * 64u);
    EXPECT_EQ(h.accessInstr(0, 0x400000), HitLevel::L2);
}

TEST(SplitL2, DataCapacityShrinks)
{
    // 6 of 8 ways for instructions leaves a 2-way data partition:
    // three conflicting data blocks cannot all reside.
    CacheHierarchy h(splitConfig(6));
    const uint64_t stride = 16 * 64; // same L2 set (16 sets)
    h.accessData(0, 0, 0 * stride, false, AccessKind::Heap);
    h.accessData(0, 0, 1 * stride, false, AccessKind::Heap);
    h.accessData(0, 0, 2 * stride, false, AccessKind::Heap);
    // Thrash L1-D so the next accesses actually probe the L2.
    for (int i = 3; i <= 7; ++i)
        h.accessData(0, 0, i * 4 * 64u, false, AccessKind::Heap);
    uint32_t l2_hits = 0;
    for (int i = 0; i < 3; ++i) {
        if (h.accessData(0, 0, i * stride, false, AccessKind::Heap) ==
            HitLevel::L2)
            ++l2_hits;
    }
    EXPECT_LE(l2_hits, 2u);
}

TEST(SplitL2, StatsStillAggregatePerLevel)
{
    CacheHierarchy h(splitConfig(4));
    h.accessInstr(0, 0x400000);
    h.accessData(0, 0, 0x900000, false, AccessKind::Heap);
    EXPECT_EQ(h.l2Stats().missesOf(AccessKind::Code), 1u);
    EXPECT_EQ(h.l2Stats().missesOf(AccessKind::Heap), 1u);
}

} // namespace
} // namespace wsearch
