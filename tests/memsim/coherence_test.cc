/**
 * Coherence-directory unit suite: the MSI/MESI transition table,
 * invalidation-counter balance against the returned masks, and the
 * hierarchy-level wiring (remote stores invalidate private copies and
 * the traffic lands in cohStats).
 */
#include <gtest/gtest.h>

#include "memsim/coherence.hh"
#include "memsim/hierarchy.hh"

namespace wsearch {
namespace {

constexpr uint64_t A = 0x1000;

TEST(Coherence, MesiTransitionTable)
{
    CoherenceDirectory d(CoherenceProtocol::MESI, 64);
    EXPECT_EQ(d.stateOf(A), 'I');

    // First load grants Exclusive to the requester.
    EXPECT_EQ(d.onAccess(0, A, false), 0u);
    EXPECT_EQ(d.stateOf(A), 'E');
    EXPECT_EQ(d.sharersOf(A), 1ull << 0);

    // A second reader degrades E -> S; no messages charged.
    EXPECT_EQ(d.onAccess(1, A, false), 0u);
    EXPECT_EQ(d.stateOf(A), 'S');
    EXPECT_EQ(d.sharersOf(A), (1ull << 0) | (1ull << 1));
    EXPECT_EQ(d.stats().upgrades, 0u);
    EXPECT_EQ(d.stats().invalidations, 0u);

    // A store invalidates the remote sharer and takes Modified.
    EXPECT_EQ(d.onAccess(0, A, true), 1ull << 1);
    EXPECT_EQ(d.stateOf(A), 'M');
    EXPECT_EQ(d.sharersOf(A), 1ull << 0);
    EXPECT_EQ(d.stats().upgrades, 1u);
    EXPECT_EQ(d.stats().invalidations, 1u);

    // A remote load of the Modified line flushes it (dirty
    // writeback) and degrades to Shared.
    EXPECT_EQ(d.onAccess(1, A, false), 0u);
    EXPECT_EQ(d.stateOf(A), 'S');
    EXPECT_EQ(d.stats().dirtyWritebacks, 1u);
}

TEST(Coherence, MesiSilentExclusiveUpgrade)
{
    // The one observable MESI/MSI difference: a store by the sole
    // exclusive owner upgrades E->M without any message.
    CoherenceDirectory d(CoherenceProtocol::MESI, 64);
    d.onAccess(0, A, false);
    ASSERT_EQ(d.stateOf(A), 'E');
    EXPECT_EQ(d.onAccess(0, A, true), 0u);
    EXPECT_EQ(d.stateOf(A), 'M');
    EXPECT_EQ(d.stats().upgrades, 0u);
}

TEST(Coherence, MsiChargesEveryUpgrade)
{
    CoherenceDirectory d(CoherenceProtocol::MSI, 64);
    // MSI has no E: the first load fills Shared...
    d.onAccess(0, A, false);
    EXPECT_EQ(d.stateOf(A), 'S');
    // ...so even the private store is an S->M upgrade message.
    EXPECT_EQ(d.onAccess(0, A, true), 0u);
    EXPECT_EQ(d.stateOf(A), 'M');
    EXPECT_EQ(d.stats().upgrades, 1u);
    // And a first-touch store is charged too (fill + upgrade).
    d.onAccess(2, A + 64, true);
    EXPECT_EQ(d.stats().upgrades, 2u);
}

TEST(Coherence, InvalidationCountEqualsMaskPopcount)
{
    CoherenceDirectory d(CoherenceProtocol::MESI, 64);
    for (uint32_t core = 0; core < 5; ++core)
        d.onAccess(core, A, false);
    ASSERT_EQ(d.stateOf(A), 'S');
    const uint64_t mask = d.onAccess(2, A, true);
    // Writer excluded; the other four sharers are invalidated.
    EXPECT_EQ(mask, 0b11011ull);
    EXPECT_EQ(d.stats().invalidations, 4u);
    EXPECT_EQ(d.sharersOf(A), 1ull << 2);
}

TEST(Coherence, ResetStatsKeepsDirectory)
{
    CoherenceDirectory d(CoherenceProtocol::MESI, 64);
    d.onAccess(0, A, false);
    d.onAccess(1, A, true);
    ASSERT_GT(d.stats().invalidations, 0u);
    d.resetStats();
    EXPECT_EQ(d.stats().invalidations, 0u);
    EXPECT_EQ(d.stateOf(A), 'M'); // contents survive
}

HierarchySpec
twoCoreSpec(CoherenceProtocol proto)
{
    HierarchySpec s;
    s.numCores = 2;
    s.llc = cache_gen_llc(1 * MiB, 64, 16);
    s.coherence = proto;
    return s;
}

TEST(CoherenceHierarchy, RemoteStoreInvalidatesPrivateCopy)
{
    CacheHierarchy h(twoCoreSpec(CoherenceProtocol::MESI));
    // tid 0 -> core 0, tid 1 -> core 1 (smtWays == 1).
    h.accessData(0, 0, A, false, AccessKind::Heap);
    h.accessData(0, 0, A, false, AccessKind::Heap); // warm: L1 hit
    EXPECT_EQ(h.accessData(0, 0, A, false, AccessKind::Heap),
              HitLevel::L1);

    // Core 1 writes the line: core 0's private copies die.
    h.accessData(1, 0, A, true, AccessKind::Heap);
    EXPECT_EQ(h.cohStats().invalidations, 1u);
    EXPECT_NE(h.accessData(0, 0, A, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(CoherenceHierarchy, MsiChargesMoreUpgradesThanMesi)
{
    // Private (unshared) store-heavy traffic: MESI's silent E->M
    // means zero messages, MSI pays one upgrade per first write.
    auto upgrades = [](CoherenceProtocol proto) {
        CacheHierarchy h(twoCoreSpec(proto));
        for (uint64_t i = 0; i < 64; ++i) {
            const uint64_t addr = 0x100000 + i * 64;
            h.accessData(0, 0, addr, false, AccessKind::Heap);
            h.accessData(0, 0, addr, true, AccessKind::Heap);
        }
        return h.cohStats().upgrades;
    };
    EXPECT_EQ(upgrades(CoherenceProtocol::MESI), 0u);
    EXPECT_EQ(upgrades(CoherenceProtocol::MSI), 64u);
}

TEST(CoherenceHierarchy, NoneProtocolKeepsCountersZero)
{
    CacheHierarchy h(twoCoreSpec(CoherenceProtocol::None));
    for (uint64_t i = 0; i < 32; ++i) {
        h.accessData(0, 0, A + i * 64, true, AccessKind::Heap);
        h.accessData(1, 0, A + i * 64, true, AccessKind::Heap);
    }
    EXPECT_EQ(h.cohStats().upgrades, 0u);
    EXPECT_EQ(h.cohStats().invalidations, 0u);
    EXPECT_EQ(h.cohStats().dirtyWritebacks, 0u);
}

TEST(CoherenceHierarchy, ResetStatsClearsCoherenceCounters)
{
    CacheHierarchy h(twoCoreSpec(CoherenceProtocol::MSI));
    h.accessData(0, 0, A, true, AccessKind::Heap);
    h.accessData(1, 0, A, true, AccessKind::Heap);
    ASSERT_GT(h.cohStats().upgrades, 0u);
    h.resetStats();
    EXPECT_EQ(h.cohStats().upgrades, 0u);
    EXPECT_EQ(h.cohStats().invalidations, 0u);
}

} // namespace
} // namespace wsearch
