/**
 * Property-based tests of cache invariants, using parameterized sweeps
 * over geometry and randomized (seeded) reference streams.
 */
#include <gtest/gtest.h>

#include <vector>

#include "memsim/cache.hh"
#include "memsim/fully_assoc.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

/** A reusable Zipf-over-blocks reference stream. */
std::vector<uint64_t>
zipfStream(uint64_t blocks, double theta, int n, uint64_t seed)
{
    ZipfSampler z(blocks, theta);
    Rng rng(seed);
    std::vector<uint64_t> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back(z.sample(rng) * 64);
    return out;
}

// --- LRU stack property: a larger fully-associative LRU cache never
// misses more than a smaller one on any trace. Strict inclusion. ---

class LruStackProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>>
{
};

TEST_P(LruStackProperty, LargerFaCacheNeverWorse)
{
    const auto [small_blocks, theta] = GetParam();
    const auto stream = zipfStream(4096, theta, 60000, 42);
    FullyAssocLruCache small(small_blocks * 64, 64);
    FullyAssocLruCache large(small_blocks * 2 * 64, 64);
    uint64_t small_misses = 0, large_misses = 0;
    for (auto a : stream) {
        const bool small_hit = small.access(a);
        const bool large_hit = large.access(a);
        if (!small_hit)
            ++small_misses;
        if (!large_hit)
            ++large_misses;
        // Strict per-access inclusion: a hit in the small cache
        // implies a hit in the large cache.
        ASSERT_FALSE(small_hit && !large_hit);
    }
    EXPECT_LE(large_misses, small_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LruStackProperty,
    ::testing::Combine(::testing::Values(32, 128, 512),
                       ::testing::Values(0.4, 0.8, 1.1)));

// --- More ways with the same set count never hurt under LRU. ---

class WaysProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(WaysProperty, MoreWaysNeverWorse)
{
    const uint32_t base_ways = GetParam();
    const auto stream = zipfStream(2048, 0.7, 60000, 7);
    CacheConfig small_cfg{/*size*/ 64 * base_ways * 64, 64, base_ways};
    CacheConfig big_cfg{64 * base_ways * 2 * 64, 64, base_ways * 2};
    SetAssocCache small(small_cfg), big(big_cfg);
    ASSERT_EQ(small.numSets(), big.numSets());
    uint64_t small_misses = 0, big_misses = 0;
    for (auto a : stream) {
        const bool sh = small.access(a, false);
        const bool bh = big.access(a, false);
        if (!sh)
            ++small_misses;
        if (!bh)
            ++big_misses;
        ASSERT_FALSE(sh && !bh); // per-set LRU inclusion
    }
    EXPECT_LE(big_misses, small_misses);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WaysProperty,
                         ::testing::Values(1, 2, 4, 8));

// --- CAT partitioning to k ways is equivalent to a k-way cache with
// the same set count. ---

class CatEquivalence : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CatEquivalence, PartitionEqualsSmallerCache)
{
    const uint32_t part = GetParam();
    const auto stream = zipfStream(2048, 0.8, 40000, 11);
    CacheConfig full{64 * 8 * 64, 64, 8};
    full.partitionWays = part;
    CacheConfig equiv{64 * part * 64, 64, part};
    SetAssocCache a(full), b(equiv);
    ASSERT_EQ(a.numSets(), b.numSets());
    for (auto addr : stream)
        ASSERT_EQ(a.access(addr, false), b.access(addr, false));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CatEquivalence,
                         ::testing::Values(1, 2, 4, 6));

// --- Larger blocks capture more spatial locality on sequential
// streams and hurt on random single-word streams. ---

TEST(BlockSize, SequentialStreamBenefits)
{
    auto misses_with_block = [](uint32_t block) {
        SetAssocCache c({8 * KiB, block, 8});
        uint64_t misses = 0;
        for (uint64_t a = 0; a < 512 * KiB; a += 8)
            if (!c.access(a, false))
                ++misses;
        return misses;
    };
    EXPECT_GT(misses_with_block(32), misses_with_block(64));
    EXPECT_GT(misses_with_block(64), misses_with_block(128));
    EXPECT_GT(misses_with_block(128), misses_with_block(256));
}

TEST(BlockSize, RandomWordsPreferSmallBlocks)
{
    // With a fixed byte capacity, larger blocks mean fewer lines and
    // more capacity misses on a random word stream over a working set
    // larger than the cache.
    auto hit_rate = [](uint32_t block) {
        SetAssocCache c({16 * KiB, block, 8});
        ZipfSampler z(16384, 0.6);
        Rng rng(3);
        uint64_t hits = 0;
        const int n = 100000;
        for (int i = 0; i < n; ++i)
            if (c.access(z.sample(rng) * 64, false))
                ++hits;
        return static_cast<double>(hits) / n;
    };
    EXPECT_GT(hit_rate(64), hit_rate(512));
}

// --- Zipf hit-rate monotonicity in capacity (statistical, set-assoc).
class CapacityMonotonic : public ::testing::TestWithParam<double>
{
};

TEST_P(CapacityMonotonic, HitRateGrowsWithCapacity)
{
    const double theta = GetParam();
    auto hit_rate = [&](uint64_t size) {
        SetAssocCache c({size, 64, 8});
        ZipfSampler z(32768, theta);
        Rng rng(9);
        uint64_t hits = 0;
        const int n = 200000;
        for (int i = 0; i < n; ++i)
            if (c.access(z.sample(rng) * 64, false))
                ++hits;
        return static_cast<double>(hits) / n;
    };
    double prev = -1.0;
    for (uint64_t size = 16 * KiB; size <= 1 * MiB; size *= 4) {
        const double h = hit_rate(size);
        EXPECT_GE(h, prev - 0.005) << "size " << size;
        prev = h;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CapacityMonotonic,
                         ::testing::Values(0.5, 0.8, 1.05));

} // namespace
} // namespace wsearch
