#include <gtest/gtest.h>

#include "memsim/hierarchy.hh"
#include "memsim/prefetch.hh"

namespace wsearch {
namespace {

TEST(StridePrefetcher, DetectsConstantStride)
{
    StridePrefetcher p(64);
    const uint64_t pc = 0x400100;
    uint64_t predicted = 0;
    // Needs a few accesses to gain confidence.
    for (int i = 0; i < 4; ++i)
        predicted = p.train(pc, 0x1000 + i * 128);
    EXPECT_EQ(predicted, 0x1000 + 3 * 128 + 128);
}

TEST(StridePrefetcher, NoPredictionForRandom)
{
    StridePrefetcher p(64);
    Rng rng(1);
    int predictions = 0;
    for (int i = 0; i < 1000; ++i)
        if (p.train(0x400100, rng.nextRange(1 << 30)))
            ++predictions;
    EXPECT_LT(predictions, 50);
}

TEST(StridePrefetcher, NegativeStride)
{
    StridePrefetcher p(64);
    uint64_t predicted = 0;
    for (int i = 0; i < 4; ++i)
        predicted = p.train(0x400200, 0x100000 - i * 64);
    EXPECT_EQ(predicted, 0x100000 - 3 * 64 - 64);
}

TEST(StreamPrefetcher, FiresOnAscendingMisses)
{
    StreamPrefetcher s(2);
    uint64_t out[8];
    EXPECT_EQ(s.observeMiss(100, out), 0u);
    const uint32_t n = s.observeMiss(101, out);
    ASSERT_EQ(n, 2u);
    EXPECT_EQ(out[0], 102u);
    EXPECT_EQ(out[1], 103u);
}

TEST(StreamPrefetcher, ResetsOnNonSequential)
{
    StreamPrefetcher s(2);
    uint64_t out[8];
    s.observeMiss(100, out);
    s.observeMiss(101, out);
    EXPECT_EQ(s.observeMiss(500, out), 0u);
    EXPECT_EQ(s.observeMiss(501, out), 2u);
}

TEST(PrefetchIntegration, StrideStreamCutsL1Misses)
{
    // A strided loop should see far fewer L1-D misses with the stride
    // prefetcher enabled.
    auto run = [](bool enable) {
        HierarchyConfig cfg;
        cfg.l1i = {1 * KiB, 64, 4};
        cfg.l1d = {4 * KiB, 64, 4};
        cfg.l2 = {32 * KiB, 64, 8};
        cfg.l3 = {256 * KiB, 64, 8};
        cfg.prefetch.l1Stride = enable;
        CacheHierarchy h(cfg);
        for (uint64_t i = 0; i < 20000; ++i)
            h.accessData(0, 0x400100, 0x100000 + i * 64, false,
                         AccessKind::Shard);
        return h.l1dStats().totalMisses();
    };
    const uint64_t without = run(false);
    const uint64_t with = run(true);
    EXPECT_LT(with, without / 2);
}

TEST(PrefetchIntegration, AdjacentLineHelpsPairs)
{
    // Accesses that touch block pairs benefit from buddy prefetching
    // at the L2.
    auto run = [](bool enable) {
        HierarchyConfig cfg;
        cfg.l1i = {1 * KiB, 64, 4};
        cfg.l1d = {1 * KiB, 64, 4};
        cfg.l2 = {64 * KiB, 64, 8};
        cfg.l3 = {256 * KiB, 64, 8};
        cfg.prefetch.l2Adjacent = enable;
        CacheHierarchy h(cfg);
        Rng rng(7);
        for (int i = 0; i < 30000; ++i) {
            const uint64_t pair = rng.nextRange(1 << 18) * 128;
            h.accessData(0, 0, pair, false, AccessKind::Heap);
            h.accessData(0, 0, pair + 64, false, AccessKind::Heap);
        }
        return h.l2Stats().totalMisses();
    };
    const uint64_t without = run(false);
    const uint64_t with = run(true);
    EXPECT_LT(with, without);
}

TEST(PrefetchIntegration, UsefulPrefetchCounted)
{
    HierarchyConfig cfg;
    cfg.l1d = {4 * KiB, 64, 4};
    cfg.l2 = {32 * KiB, 64, 8};
    cfg.l3 = {256 * KiB, 64, 8};
    cfg.prefetch.l1Stride = true;
    CacheHierarchy h(cfg);
    for (uint64_t i = 0; i < 1000; ++i)
        h.accessData(0, 0x400100, 0x100000 + i * 64, false,
                     AccessKind::Shard);
    EXPECT_GT(h.l1dStats().prefetchIssued, 0u);
    EXPECT_GT(h.l1dStats().prefetchUseful, 0u);
}

TEST(PrefetchConfig, AllOnEnablesEverything)
{
    const PrefetchConfig p = PrefetchConfig::allOn();
    EXPECT_TRUE(p.l1Stride);
    EXPECT_TRUE(p.l1NextLine);
    EXPECT_TRUE(p.l2Adjacent);
    EXPECT_TRUE(p.l2Stream);
    EXPECT_TRUE(p.any());
    EXPECT_FALSE(PrefetchConfig{}.any());
}

} // namespace
} // namespace wsearch
