/**
 * Replacement-policy unit suite: golden eviction sequences for
 * LRU/SRRIP/DRRIP, DRRIP set-dueling monotonicity, and the
 * CacheUnit construction-time rejection of unsupported policy
 * combinations (fully-associative caches implement exact LRU only).
 */
#include <gtest/gtest.h>

#include "memsim/cache.hh"
#include "memsim/cache_unit.hh"
#include "memsim/spec.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

/// 4 KiB, 4-way, 64 B blocks -> 16 sets; set-0 blocks are multiples
/// of kStride.
constexpr uint64_t kStride = 16 * 64;

CacheConfig
smallCache(ReplPolicy repl, uint64_t size = 4 * KiB, uint32_t ways = 4)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.blockBytes = 64;
    c.ways = ways;
    c.repl = repl;
    return c;
}

uint64_t
evictOf(SetAssocCache &c, uint64_t addr)
{
    uint64_t evicted = kNoBlock;
    c.access(addr, false, &evicted);
    return evicted;
}

TEST(ReplGolden, LruEvictionOrder)
{
    SetAssocCache c(smallCache(ReplPolicy::LRU));
    const uint64_t A = 0, B = kStride, C = 2 * kStride, D = 3 * kStride;
    for (uint64_t a : {A, B, C, D})
        EXPECT_EQ(evictOf(c, a), kNoBlock);
    ASSERT_TRUE(c.access(A, false)); // refresh A: LRU order B,C,D,A
    EXPECT_EQ(evictOf(c, 4 * kStride), B);
    EXPECT_EQ(evictOf(c, 5 * kStride), C);
    EXPECT_EQ(evictOf(c, 6 * kStride), D);
    EXPECT_EQ(evictOf(c, 7 * kStride), A);
}

TEST(ReplGolden, SrripEvictionOrder)
{
    // SRRIP inserts at RRPV=kRrpvMax-1=2, promotes to 0 on hit, and
    // evicts the first way at RRPV=3 (aging the set when none is).
    SetAssocCache c(smallCache(ReplPolicy::SRRIP));
    const uint64_t A = 0, B = kStride, C = 2 * kStride, D = 3 * kStride;
    for (uint64_t a : {A, B, C, D})
        c.access(a, false);
    ASSERT_TRUE(c.access(A, false)); // A -> RRPV 0
    // Aging: A 0->1, B/C/D 2->3; first distant way is B.
    EXPECT_EQ(evictOf(c, 4 * kStride), B);
    EXPECT_EQ(evictOf(c, 5 * kStride), C); // C,D already at 3
    EXPECT_EQ(evictOf(c, 6 * kStride), D);
    // Remaining: A@1, then the three fresh inserts @2; aging twice
    // brings the insert in B's old way (lowest index) to 3 first.
    EXPECT_EQ(evictOf(c, 7 * kStride), 4 * kStride);
}

TEST(ReplGolden, DrripNeutralStartFollowsBrrip)
{
    // 16 sets < kDuelPeriod: set 0 is the lone (SRRIP) leader; use a
    // follower set. PSEL starts at the neutral midpoint, which maps
    // to BRRIP: inserts land at RRPV=3, so an established hot line
    // survives any amount of streaming.
    SetAssocCache c(smallCache(ReplPolicy::DRRIP));
    const uint64_t set1 = 64; // set-1 blocks: 64 + k*kStride
    const uint64_t hot = set1;
    c.access(hot, false);
    ASSERT_TRUE(c.access(hot, false)); // promote to RRPV 0
    for (uint64_t i = 1; i <= 100; ++i)
        c.access(set1 + i * kStride, false);
    EXPECT_TRUE(c.probe(hot));
    // Under LRU the same scan flushes the hot line.
    SetAssocCache lru(smallCache(ReplPolicy::LRU));
    lru.access(hot, false);
    lru.access(hot, false);
    for (uint64_t i = 1; i <= 100; ++i)
        lru.access(set1 + i * kStride, false);
    EXPECT_FALSE(lru.probe(hot));
}

TEST(ReplGolden, DrripSetDuelingMovesPsel)
{
    // 64 sets (16 KiB / 4-way): set 0 is the SRRIP leader, set 32 the
    // BRRIP leader. Leader fills vote misses into PSEL.
    SetAssocCache c(smallCache(ReplPolicy::DRRIP, 16 * KiB, 4));
    const uint32_t neutral = c.drripPsel();
    for (uint64_t i = 0; i < 50; ++i)
        c.access(i * 64 * KiB, false); // set 0, always fresh -> fills
    const uint32_t after_srrip_leader = c.drripPsel();
    EXPECT_GT(after_srrip_leader, neutral);
    for (uint64_t i = 0; i < 100; ++i)
        c.access(32 * 64 + i * 64 * KiB, false); // set 32 fills
    EXPECT_LT(c.drripPsel(), after_srrip_leader);
}

TEST(ReplGolden, DrripPselSaturates)
{
    SetAssocCache c(smallCache(ReplPolicy::DRRIP, 16 * KiB, 4));
    for (uint64_t i = 0; i < 5'000; ++i)
        c.access(i * 64 * KiB, false); // hammer the SRRIP leader
    const uint32_t top = c.drripPsel();
    EXPECT_EQ(top, 1023u); // 10-bit PSEL cap
    c.access(5'000 * 64 * KiB, false);
    EXPECT_EQ(c.drripPsel(), top); // saturated, no wrap
}

TEST(ReplGolden, DrripZipfCompetitiveWithLru)
{
    auto hit_rate = [](ReplPolicy repl) {
        SetAssocCache c(smallCache(repl, 16 * KiB, 8));
        ZipfSampler z(16384, 0.8);
        Rng rng(3);
        uint64_t hits = 0;
        const int n = 300000;
        for (int i = 0; i < n; ++i)
            if (c.access(z.sample(rng) * 64, false))
                ++hits;
        return static_cast<double>(hits) / n;
    };
    EXPECT_GT(hit_rate(ReplPolicy::DRRIP),
              hit_rate(ReplPolicy::LRU) - 0.02);
}

TEST(CacheUnit, RejectsNonLruFullyAssociative)
{
    // Satellite fix: the fully-associative backend silently ignored
    // the configured ReplPolicy; now it is rejected at construction.
    CacheLevelSpec spec = cache_gen_victim(1 * MiB, 64,
                                           /*fully_assoc=*/true);
    spec.cache.repl = ReplPolicy::SRRIP;
    EXPECT_EXIT(CacheUnit(spec, spec.cache.sizeBytes),
                ::testing::ExitedWithCode(1),
                "fully-associative");
}

TEST(CacheUnit, AcceptsLruFullyAssociative)
{
    CacheLevelSpec spec = cache_gen_victim(64 * KiB, 64,
                                           /*fully_assoc=*/true);
    CacheUnit u(spec, spec.cache.sizeBytes);
    EXPECT_TRUE(u.fullyAssociative());
    u.insert(0x1000, false, false);
    EXPECT_TRUE(u.probe(0x1000));
}

} // namespace
} // namespace wsearch
