/**
 * Legacy-config compatibility oracle. The golden counters below were
 * captured from the pre-redesign (monolithic HierarchyConfig)
 * implementation on the exact harness used here: 4 S1-leaf trace
 * threads, 40k warmup + 80k measured records. The redesigned
 * generator-based hierarchy must reproduce every counter EXACTLY —
 * any drift means the composable refactor changed simulation
 * semantics, which is a bug even if the new numbers look plausible.
 */
#include <gtest/gtest.h>

#include "memsim/spec.hh"
#include "memsim/sweep.hh"
#include "trace/synthetic.hh"

namespace wsearch {
namespace {

struct GoldenLevel
{
    uint64_t acc[kNumAccessKinds];
    uint64_t miss[kNumAccessKinds];
};

struct Golden
{
    GoldenLevel l1i, l1d, l2, l3, l4;
    uint64_t evictions, writebacks, backInvalidations;
};

SimResult
runOracle(const HierarchyConfig &cfg)
{
    SyntheticSearchTrace src(WorkloadProfile::s1Leaf(), 4);
    CacheHierarchy hier(cfg);
    return runTrace(src, hier, 40'000, 80'000);
}

void
expectLevel(const CacheLevelStats &s, const GoldenLevel &g,
            const char *level)
{
    for (uint32_t k = 0; k < kNumAccessKinds; ++k) {
        EXPECT_EQ(s.accesses[k], g.acc[k])
            << level << " accesses kind " << k;
        EXPECT_EQ(s.misses[k], g.miss[k])
            << level << " misses kind " << k;
    }
}

void
expectGolden(const SimResult &r, const Golden &g)
{
    EXPECT_EQ(r.instructions, 80'000u);
    expectLevel(r.l1i, g.l1i, "l1i");
    expectLevel(r.l1d, g.l1d, "l1d");
    expectLevel(r.l2, g.l2, "l2");
    expectLevel(r.l3, g.l3, "l3");
    expectLevel(r.l4, g.l4, "l4");
    EXPECT_EQ(r.l3Evictions, g.evictions);
    EXPECT_EQ(r.writebacks, g.writebacks);
    EXPECT_EQ(r.backInvalidations, g.backInvalidations);
}

constexpr GoldenLevel kZero = {{0, 0, 0, 0}, {0, 0, 0, 0}};

TEST(CompatOracle, PlainHierarchy)
{
    HierarchyConfig cfg;
    cfg.numCores = 4;
    cfg.l3 = {1 * MiB, 64, 16};
    const Golden g = {
        {{80000, 0, 0, 0}, {1735, 0, 0, 0}},
        {{0, 17451, 871, 12012}, {0, 2495, 109, 3}},
        {{1735, 2495, 109, 3}, {1671, 1755, 109, 0}},
        {{1671, 1755, 109, 0}, {1262, 1704, 109, 0}},
        kZero,
        25, 14, 0,
    };
    expectGolden(runOracle(cfg), g);
}

TEST(CompatOracle, InclusiveCatPartition)
{
    HierarchyConfig cfg;
    cfg.numCores = 4;
    cfg.l3 = {1 * MiB, 64, 16};
    cfg.l3.partitionWays = 4;
    cfg.inclusiveL3 = true;
    const Golden g = {
        {{80000, 0, 0, 0}, {2296, 0, 0, 0}},
        {{0, 17451, 871, 12012}, {0, 7348, 110, 4567}},
        {{2296, 7348, 110, 4567}, {2296, 7145, 110, 4567}},
        {{2296, 7145, 110, 4567}, {2026, 7087, 110, 4567}},
        kZero,
        12435, 2902, 12706,
    };
    expectGolden(runOracle(cfg), g);
}

TEST(CompatOracle, SplitL2Partition)
{
    HierarchyConfig cfg;
    cfg.numCores = 4;
    cfg.l3 = {1 * MiB, 64, 16};
    cfg.l2InstrPartitionWays = 2;
    const Golden g = {
        {{80000, 0, 0, 0}, {1735, 0, 0, 0}},
        {{0, 17451, 871, 12012}, {0, 2495, 109, 3}},
        {{1735, 2495, 109, 3}, {1703, 1755, 109, 0}},
        {{1703, 1755, 109, 0}, {1262, 1704, 109, 0}},
        kZero,
        25, 10, 0,
    };
    expectGolden(runOracle(cfg), g);
}

/// The three L4 variants produce identical counters at this scale
/// (the fill-policy and associativity differences need bigger
/// footprints to separate; the bench ablations cover that).
constexpr Golden kL4Golden = {
    {{80000, 0, 0, 0}, {1735, 0, 0, 0}},
    {{0, 17451, 871, 12012}, {0, 2495, 109, 3}},
    {{1735, 2495, 109, 3}, {1671, 1755, 109, 0}},
    {{1671, 1755, 109, 0}, {1340, 1706, 109, 0}},
    {{1340, 1706, 109, 0}, {1263, 1704, 109, 0}},
    2321, 499, 0,
};

HierarchyConfig
l4Base()
{
    HierarchyConfig cfg;
    cfg.numCores = 4;
    cfg.l3 = {256 * KiB, 64, 16};
    return cfg;
}

TEST(CompatOracle, L4VictimDirectMapped)
{
    HierarchyConfig cfg = l4Base();
    cfg.l4 = cache_gen_victim(4 * MiB, 64);
    expectGolden(runOracle(cfg), kL4Golden);
}

TEST(CompatOracle, L4OnMissDirectMapped)
{
    HierarchyConfig cfg = l4Base();
    cfg.l4 = cache_gen_victim(4 * MiB, 64, /*fully_assoc=*/false,
                              /*victim_fill=*/false);
    expectGolden(runOracle(cfg), kL4Golden);
}

TEST(CompatOracle, L4VictimFullyAssociative)
{
    HierarchyConfig cfg = l4Base();
    cfg.l4 = cache_gen_victim(4 * MiB, 64, /*fully_assoc=*/true);
    expectGolden(runOracle(cfg), kL4Golden);
}

TEST(CompatOracle, SrripSmtPrefetch)
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.smtWays = 2;
    cfg.l3 = {1 * MiB, 64, 16};
    cfg.l3.repl = ReplPolicy::SRRIP;
    cfg.prefetch = PrefetchConfig::allOn();
    const SimResult r = runOracle(cfg);
    const Golden g = {
        {{80000, 0, 0, 0}, {1763, 0, 0, 0}},
        {{0, 17451, 871, 12012}, {0, 8619, 78, 1436}},
        {{1763, 8619, 78, 1436}, {1030, 1420, 55, 27}},
        {{1030, 1420, 55, 27}, {868, 1335, 55, 8}},
        kZero,
        2, 122, 0,
    };
    expectGolden(r, g);
    EXPECT_EQ(r.l1d.prefetchIssued, 5925u);
    EXPECT_EQ(r.l1d.prefetchUseful, 1778u);
    EXPECT_EQ(r.l2.prefetchIssued, 1998u);
    EXPECT_EQ(r.l2.prefetchUseful, 917u);
}

TEST(CompatOracle, GeneratorRouteMatchesLegacyRoute)
{
    // The hand-assembled generator spec and fromLegacy must agree
    // with each other, not just with the goldens.
    HierarchyConfig legacy;
    legacy.numCores = 4;
    legacy.l3 = {1 * MiB, 64, 16};
    legacy.l3.partitionWays = 4;
    legacy.inclusiveL3 = true;

    HierarchySpec gen;
    gen.numCores = 4;
    gen.llc = cache_gen_llc(1 * MiB, 64, 16, ReplPolicy::LRU,
                            InclusionMode::Inclusive, 1, 4);

    SyntheticSearchTrace srcA(WorkloadProfile::s1Leaf(), 4);
    CacheHierarchy hierA(legacy);
    const SimResult a = runTrace(srcA, hierA, 40'000, 80'000);
    SyntheticSearchTrace srcB(WorkloadProfile::s1Leaf(), 4);
    CacheHierarchy hierB(gen);
    const SimResult b = runTrace(srcB, hierB, 40'000, 80'000);

    expectLevel(b.l3, {{a.l3.accesses[0], a.l3.accesses[1],
                        a.l3.accesses[2], a.l3.accesses[3]},
                       {a.l3.misses[0], a.l3.misses[1],
                        a.l3.misses[2], a.l3.misses[3]}},
                "l3");
    EXPECT_EQ(a.backInvalidations, b.backInvalidations);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.l3Evictions, b.l3Evictions);
}

} // namespace
} // namespace wsearch
