#include <gtest/gtest.h>

#include "memsim/hierarchy.hh"

namespace wsearch {
namespace {

HierarchyConfig
tinyConfig(uint32_t cores = 1)
{
    HierarchyConfig h;
    h.numCores = cores;
    h.l1i = {1 * KiB, 64, 4};
    h.l1d = {1 * KiB, 64, 4};
    h.l2 = {4 * KiB, 64, 4};
    h.l3 = {16 * KiB, 64, 4};
    return h;
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    CacheHierarchy h(tinyConfig());
    EXPECT_EQ(h.accessData(0, 0x100, 0x9000, false, AccessKind::Heap),
              HitLevel::Memory);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyConfig());
    h.accessData(0, 0x100, 0x9000, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0x100, 0x9000, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(Hierarchy, InstrFetchFillsPath)
{
    CacheHierarchy h(tinyConfig());
    EXPECT_EQ(h.accessInstr(0, 0x400000), HitLevel::Memory);
    EXPECT_EQ(h.accessInstr(0, 0x400000), HitLevel::L1);
    EXPECT_EQ(h.l1iStats().totalAccesses(), 2u);
    EXPECT_EQ(h.l1iStats().totalMisses(), 1u);
    EXPECT_EQ(h.l2Stats().missesOf(AccessKind::Code), 1u);
    EXPECT_EQ(h.l3Stats().missesOf(AccessKind::Code), 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy h(tinyConfig());
    // L1D is 1 KiB (16 blocks, 4 sets x 4 ways); L2 is 4 KiB.
    // Touch block A, then evict it from L1 by filling its set.
    const uint64_t a = 0x10000;
    h.accessData(0, 0, a, false, AccessKind::Heap);
    for (int i = 1; i <= 4; ++i) {
        h.accessData(0, 0, a + i * 4 * 64ull, false,
                     AccessKind::Heap); // same L1 set
    }
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L2);
}

TEST(Hierarchy, SeparateCoresHavePrivateL1)
{
    CacheHierarchy h(tinyConfig(2));
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    // Core 1 misses its L1/L2 but finds the block in the shared L3.
    EXPECT_EQ(h.accessData(1, 0, 0x9000, false, AccessKind::Heap),
              HitLevel::L3);
}

TEST(Hierarchy, SmtThreadsShareL1)
{
    HierarchyConfig cfg = tinyConfig(1);
    cfg.smtWays = 2;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.coreOf(0), 0u);
    EXPECT_EQ(h.coreOf(1), 0u);
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(1, 0, 0x9000, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(Hierarchy, ThreadToCoreMapping)
{
    HierarchyConfig cfg = tinyConfig(4);
    cfg.smtWays = 2;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.coreOf(0), 0u);
    EXPECT_EQ(h.coreOf(1), 0u);
    EXPECT_EQ(h.coreOf(2), 1u);
    EXPECT_EQ(h.coreOf(7), 3u);
}

TEST(Hierarchy, StatsTagByKind)
{
    CacheHierarchy h(tinyConfig());
    h.accessData(0, 0, 0x9000, false, AccessKind::Shard);
    h.accessData(0, 0, 0xA0000, false, AccessKind::Heap);
    EXPECT_EQ(h.l1dStats().missesOf(AccessKind::Shard), 1u);
    EXPECT_EQ(h.l1dStats().missesOf(AccessKind::Heap), 1u);
    EXPECT_EQ(h.l3Stats().missesOf(AccessKind::Shard), 1u);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    CacheHierarchy h(tinyConfig());
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    h.resetStats();
    EXPECT_EQ(h.l1dStats().totalAccesses(), 0u);
    // Contents survive: the block still hits.
    EXPECT_EQ(h.accessData(0, 0, 0x9000, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(Hierarchy, InclusiveL3BackInvalidates)
{
    HierarchyConfig cfg = tinyConfig();
    cfg.inclusiveL3 = true;
    // Make the L3 direct-mapped and tiny so evictions are easy to force.
    cfg.l3 = {4 * 64, 64, 1}; // 4 sets
    CacheHierarchy h(cfg);
    const uint64_t a = 0;
    const uint64_t conflict = 4 * 64; // same L3 set as a
    h.accessData(0, 0, a, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L1);
    // This evicts a from the L3 and must back-invalidate L1/L2.
    h.accessData(0, 0, conflict, false, AccessKind::Heap);
    EXPECT_GT(h.backInvalidations(), 0u);
    EXPECT_NE(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(Hierarchy, NonInclusiveKeepsL1OnL3Eviction)
{
    HierarchyConfig cfg = tinyConfig();
    cfg.inclusiveL3 = false;
    cfg.l3 = {4 * 64, 64, 1};
    CacheHierarchy h(cfg);
    const uint64_t a = 0;
    h.accessData(0, 0, a, false, AccessKind::Heap);
    h.accessData(0, 0, 4 * 64, false, AccessKind::Heap); // evict a in L3
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L1);
}

TEST(Hierarchy, DirtyL2EvictionWritesBack)
{
    HierarchyConfig cfg = tinyConfig();
    CacheHierarchy h(cfg);
    // Store to a block, then stream enough blocks through the L2 to
    // evict it; the writeback counter must increase.
    h.accessData(0, 0, 0, true, AccessKind::Heap);
    for (uint64_t i = 1; i <= 256; ++i)
        h.accessData(0, 0, i * 64, false, AccessKind::Heap);
    EXPECT_GT(h.writebacks(), 0u);
}

TEST(Hierarchy, NoL3Mode)
{
    HierarchyConfig cfg = tinyConfig();
    cfg.hasL3 = false;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.accessData(0, 0, 0x9000, false, AccessKind::Heap),
              HitLevel::Memory);
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    EXPECT_EQ(h.l3Stats().totalAccesses(), 0u);
}

} // namespace
} // namespace wsearch
