#include <gtest/gtest.h>

#include "memsim/cache.hh"

namespace wsearch {
namespace {

CacheConfig
smallCache(uint64_t size = 4 * KiB, uint32_t ways = 4)
{
    CacheConfig c;
    c.sizeBytes = size;
    c.blockBytes = 64;
    c.ways = ways;
    return c;
}

TEST(SetAssocCache, Geometry)
{
    SetAssocCache c(smallCache(4 * KiB, 4));
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.ways(), 4u);
    EXPECT_EQ(c.blockBytes(), 64u);
    EXPECT_EQ(c.effectiveBytes(), 4 * KiB);
}

TEST(SetAssocCache, NonPowerOfTwoSets)
{
    // 45 MiB 20-way Haswell L3: 36864 sets (not a power of two).
    CacheConfig c;
    c.sizeBytes = 45 * MiB;
    c.blockBytes = 64;
    c.ways = 20;
    SetAssocCache l3(c);
    EXPECT_EQ(l3.numSets(), 36864u);
    EXPECT_EQ(l3.effectiveBytes(), 45 * MiB);
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103F, false)); // same block
    EXPECT_FALSE(c.access(0x1040, false)); // next block
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c(smallCache(4 * KiB, 4)); // 16 sets
    // Fill one set (set 0): blocks whose index bits are 0.
    const uint64_t stride = 16 * 64; // same set, different tags
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(c.access(i * stride, false));
    // Touch block 0 to make block 1 the LRU.
    EXPECT_TRUE(c.access(0, false));
    // Insert a 5th block; block at 1*stride must be evicted.
    uint64_t evicted = kNoBlock;
    EXPECT_FALSE(c.access(4 * stride, false, &evicted));
    EXPECT_EQ(evicted, 1 * stride);
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(1 * stride, false)); // was evicted
}

TEST(SetAssocCache, EvictionReportsDirty)
{
    SetAssocCache c(smallCache(256, 1)); // 4 sets, direct-mapped
    const uint64_t stride = 4 * 64;
    uint64_t evicted = kNoBlock;
    bool dirty = false;
    c.access(0, true); // store: dirty
    c.access(stride, false, &evicted, &dirty);
    EXPECT_EQ(evicted, 0u);
    EXPECT_TRUE(dirty);
    c.access(2 * stride, false, &evicted, &dirty);
    EXPECT_EQ(evicted, stride);
    EXPECT_FALSE(dirty);
}

TEST(SetAssocCache, TouchDoesNotAllocate)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.touch(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    c.access(0x2000, false);
    EXPECT_TRUE(c.touch(0x2000));
}

TEST(SetAssocCache, TouchRefreshesLru)
{
    SetAssocCache c(smallCache(256, 4)); // 1 set of 4 ways
    for (int i = 0; i < 4; ++i)
        c.access(i * 64, false);
    c.touch(0); // refresh block 0
    uint64_t evicted = kNoBlock;
    c.access(4 * 64, false, &evicted);
    EXPECT_EQ(evicted, 64u); // block 1, not block 0
}

TEST(SetAssocCache, InsertIsIdempotent)
{
    SetAssocCache c(smallCache());
    c.insert(0x3000, false, false);
    EXPECT_TRUE(c.probe(0x3000));
    const uint64_t pop = c.population();
    c.insert(0x3000, false, false);
    EXPECT_EQ(c.population(), pop);
}

TEST(SetAssocCache, Invalidate)
{
    SetAssocCache c(smallCache());
    c.access(0x4000, false);
    EXPECT_TRUE(c.invalidate(0x4000));
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_FALSE(c.invalidate(0x4000));
}

TEST(SetAssocCache, PartitionWaysShrinkCapacity)
{
    CacheConfig cfg = smallCache(4 * KiB, 4);
    cfg.partitionWays = 2;
    SetAssocCache c(cfg);
    EXPECT_EQ(c.effectiveWays(), 2u);
    EXPECT_EQ(c.effectiveBytes(), 2 * KiB);
    // Only 2 blocks fit per set now.
    const uint64_t stride = 16 * 64;
    c.access(0, false);
    c.access(stride, false);
    uint64_t evicted = kNoBlock;
    c.access(2 * stride, false, &evicted);
    EXPECT_NE(evicted, kNoBlock);
}

TEST(SetAssocCache, DirectMapped)
{
    SetAssocCache c(smallCache(4 * KiB, 1)); // 64 sets
    const uint64_t conflict_stride = 64 * 64;
    EXPECT_FALSE(c.access(0, false));
    EXPECT_FALSE(c.access(conflict_stride, false));
    EXPECT_FALSE(c.access(0, false)); // conflict-evicted
}

TEST(SetAssocCache, RandomReplacementStaysInCapacity)
{
    CacheConfig cfg = smallCache(4 * KiB, 4);
    cfg.repl = ReplPolicy::Random;
    SetAssocCache c(cfg);
    for (uint64_t a = 0; a < 1024 * 64; a += 64)
        c.access(a, false);
    EXPECT_LE(c.population(), 64u);
}

TEST(SetAssocCache, PrefetchedFlagReportedOnce)
{
    SetAssocCache c(smallCache());
    c.insert(0x5000, false, true); // prefetched line
    bool was_pf = false;
    EXPECT_TRUE(c.accessTrackPf(0x5000, false, &was_pf));
    EXPECT_TRUE(was_pf);
    EXPECT_TRUE(c.accessTrackPf(0x5000, false, &was_pf));
    EXPECT_FALSE(was_pf); // flag cleared by first demand hit
}

TEST(SetAssocCache, PopulationNeverExceedsCapacity)
{
    SetAssocCache c(smallCache(2 * KiB, 8)); // 32 blocks
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        c.access(rng.nextRange(1 << 20) * 64, false);
    EXPECT_LE(c.population(), 32u);
}

} // namespace
} // namespace wsearch
