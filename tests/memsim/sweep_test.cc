#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>

#include "memsim/sweep.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

constexpr uint64_t kRecords = 120'000;
constexpr uint32_t kTraceThreads = 4;

std::shared_ptr<const BufferedTrace>
makeTrace(uint64_t records = kRecords,
          size_t chunk = BufferedTrace::kDefaultChunkRecords)
{
    SyntheticSearchTrace src(WorkloadProfile::s1Leaf(), kTraceThreads);
    return BufferedTrace::materialize(src, records, chunk);
}

std::vector<HierarchyConfig>
sweepConfigs()
{
    std::vector<HierarchyConfig> configs;
    for (const uint64_t l3 : {1 * MiB, 4 * MiB, 16 * MiB}) {
        HierarchyConfig h;
        h.numCores = 4;
        h.l3.sizeBytes = l3;
        h.l3.ways = 16;
        configs.push_back(h);
    }
    {
        HierarchyConfig h;
        h.numCores = 4;
        h.l4 = cache_gen_victim(8 * MiB, 64);
        configs.push_back(h);
    }
    {
        HierarchyConfig h;
        h.numCores = 2;
        h.smtWays = 2;
        h.inclusiveL3 = true;
        configs.push_back(h);
    }
    return configs;
}

void
expectSimEq(const SimResult &a, const SimResult &b, const char *what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    const CacheLevelStats *as[] = {&a.l1i, &a.l1d, &a.l2, &a.l3, &a.l4};
    const CacheLevelStats *bs[] = {&b.l1i, &b.l1d, &b.l2, &b.l3, &b.l4};
    for (int lvl = 0; lvl < 5; ++lvl) {
        for (uint32_t k = 0; k < kNumAccessKinds; ++k) {
            ASSERT_EQ(as[lvl]->accesses[k], bs[lvl]->accesses[k])
                << what << " level " << lvl << " kind " << k;
            ASSERT_EQ(as[lvl]->misses[k], bs[lvl]->misses[k])
                << what << " level " << lvl << " kind " << k;
        }
        EXPECT_EQ(as[lvl]->prefetchIssued, bs[lvl]->prefetchIssued)
            << what;
        EXPECT_EQ(as[lvl]->prefetchUseful, bs[lvl]->prefetchUseful)
            << what;
    }
    EXPECT_EQ(a.l3Evictions, b.l3Evictions) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
    EXPECT_EQ(a.backInvalidations, b.backInvalidations) << what;
    EXPECT_EQ(a.cohUpgrades, b.cohUpgrades) << what;
    EXPECT_EQ(a.cohInvalidations, b.cohInvalidations) << what;
    EXPECT_EQ(a.cohDirtyWritebacks, b.cohDirtyWritebacks) << what;
}

/** Serial oracle: fresh source, classic virtual-dispatch runTrace. */
SimResult
serialOracle(const HierarchyConfig &cfg, uint64_t warmup,
             uint64_t measure)
{
    SyntheticSearchTrace src(WorkloadProfile::s1Leaf(), kTraceThreads);
    CacheHierarchy hier(cfg);
    return runTrace(src, hier, warmup, measure);
}

TEST(SweepEngine, ParallelSweepBitIdenticalToSerialRunTrace)
{
    const auto trace = makeTrace();
    const std::vector<HierarchyConfig> configs = sweepConfigs();
    const uint64_t warmup = 40'000, measure = 80'000;

    std::vector<SimResult> oracle;
    for (const HierarchyConfig &cfg : configs)
        oracle.push_back(serialOracle(cfg, warmup, measure));

    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
        SweepOptions opt;
        opt.threads = threads;
        const std::vector<SimResult> got =
            sweepHierarchies(*trace, configs, warmup, measure, opt);
        ASSERT_EQ(got.size(), configs.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " config=" + std::to_string(i));
            expectSimEq(got[i], oracle[i], "sweep vs serial");
            EXPECT_EQ(got[i].sampledWindows, 0u);
        }
    }
}

TEST(SweepEngine, ChunkBoundaryStraddlingSplitsAreExact)
{
    // Tiny chunks so warmup/measure boundaries land mid-chunk, on a
    // chunk edge, and straddle several chunks.
    const auto trace = makeTrace(10'000, 256);
    ASSERT_GT(trace->numChunks(), 30u);
    HierarchyConfig cfg;
    cfg.numCores = 4;
    cfg.l3.sizeBytes = 1 * MiB;

    const uint64_t splits[][2] = {
        {0, 10'000},   // no warmup
        {256, 9'744},  // warmup == one chunk exactly
        {255, 513},    // one-off-the-edge warmup, straddling measure
        {1'000, 3'000}, // mid-chunk both
        {9'999, 1},    // measure is the final record
        {512, 9'488},  // edge-aligned warmup, tail measure
    };
    for (const auto &s : splits) {
        CacheHierarchy chunked(cfg);
        const SimResult got =
            runTrace(*trace, chunked, s[0], s[1]);
        const SimResult want = serialOracle(cfg, s[0], s[1]);
        SCOPED_TRACE("warmup=" + std::to_string(s[0]) +
                     " measure=" + std::to_string(s[1]));
        expectSimEq(got, want, "chunked vs serial");
    }
}

TEST(SweepEngine, ChunkGranularityDoesNotChangeResults)
{
    HierarchyConfig cfg;
    cfg.numCores = 4;
    const SimResult want = serialOracle(cfg, 7'000, 13'000);
    for (const size_t chunk : {64u, 1'000u, 8'192u, 1u << 16}) {
        const auto trace = makeTrace(20'000, chunk);
        CacheHierarchy hier(cfg);
        const SimResult got = runTrace(*trace, hier, 7'000, 13'000);
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        expectSimEq(got, want, "chunk granularity");
    }
}

TEST(SweepEngine, SampledIntervalsMergeWindows)
{
    const auto trace = makeTrace(100'000);
    HierarchyConfig cfg;
    cfg.numCores = 4;
    SampledIntervals s;
    s.periodRecords = 20'000;
    s.warmupRecords = 2'000;
    s.measureRecords = 3'000;
    ASSERT_TRUE(s.enabled());
    EXPECT_DOUBLE_EQ(s.simulatedFraction(), 0.25);

    CacheHierarchy hier(cfg);
    const SimResult got = runTraceSampled(*trace, hier, 100'000, s);
    EXPECT_EQ(got.sampledWindows, 5u);
    EXPECT_EQ(got.instructions, 5u * 3'000u);
    EXPECT_EQ(got.l1i.totalAccesses(), got.instructions);

    // Sampling is deterministic too.
    CacheHierarchy hier2(cfg);
    expectSimEq(runTraceSampled(*trace, hier2, 100'000, s), got,
                "sampled determinism");

    // The sweep plumbs sampling through.
    SweepOptions opt;
    opt.threads = 2;
    opt.sampling = s;
    const std::vector<SimResult> swept = sweepHierarchies(
        *trace, {cfg, cfg}, 60'000, 40'000, opt);
    expectSimEq(swept[0], got, "swept sampled");
    expectSimEq(swept[1], got, "swept sampled");
}

TEST(SweepEngine, SampledDisabledFallsBackToExact)
{
    const auto trace = makeTrace(30'000);
    HierarchyConfig cfg;
    cfg.numCores = 4;
    SampledIntervals off; // periodRecords == 0
    ASSERT_FALSE(off.enabled());
    CacheHierarchy hier(cfg);
    const SimResult got = runTraceSampled(*trace, hier, 30'000, off);
    EXPECT_EQ(got.sampledWindows, 0u);
    EXPECT_EQ(got.instructions, 30'000u);
}

TEST(SweepEngine, RunParallelJobsCoversEveryIndexOnce)
{
    for (const uint32_t threads : {0u, 1u, 3u, 16u}) {
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h.store(0);
        runParallelJobs(hits.size(), threads,
                        [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "threads " << threads
                                         << " index " << i;
    }
}

TEST(SweepEngine, SimThreadsHonoursEnvOverride)
{
    ::setenv("WSEARCH_SIM_THREADS", "7", 1);
    EXPECT_EQ(simThreads(), 7u);
    ::unsetenv("WSEARCH_SIM_THREADS");
    EXPECT_GE(simThreads(), 1u);
}

} // namespace
} // namespace wsearch
