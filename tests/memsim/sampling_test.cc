/**
 * @file
 * Statistical test suite for clustered representative-interval
 * sampling (memsim/sweep.hh + trace/signature.hh). The load-bearing
 * claims, each proven against a full-replay oracle on seeded
 * phase-shifting synthetic traces:
 *
 *   1. Clustered sampling's estimate lands within its own reported
 *      confidence band of the oracle.
 *   2. At an equal simulated-record budget, clustered sampling beats
 *      uniform sampling's error on phase-irregular traces (uniform
 *      aliases against irregular phase placement; clustering recovers
 *      the exact phase weights).
 *   3. Cluster weights always sum to the total window count, and a
 *      plan selecting every window reconstructs the oracle counters
 *      bit-identically through the same weight-merge path.
 *   4. The two-pass replay (signature pass, then simulate pass) never
 *      perturbs the buffer, and window signatures are invariant to
 *      chunk granularity (windows straddling chunk edges included).
 *   5. sampledWindows / representedWindows / l3MissVar survive
 *      SimResult::operator+= merges identically at any sweep thread
 *      count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/experiments.hh"
#include "memsim/sweep.hh"
#include "trace/signature.hh"
#include "util/rng.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

constexpr uint64_t kWin = 2'000;   ///< records per window
constexpr uint64_t kNumWin = 60;   ///< windows per trace
constexpr uint64_t kTotal = kWin * kNumWin;

/**
 * Two-phase schedule with irregular streaming placement, sized so the
 * 4-window uniform plan (picks windows 0/15/30/45) systematically
 * over-samples the streaming phase: 12/60 windows stream, but 1/4 of
 * the uniform picks do.
 */
std::vector<bool>
fixedSchedule()
{
    std::vector<bool> s(kNumWin, false);
    for (const uint64_t w :
         {3u, 7u, 8u, 13u, 21u, 22u, 30u, 37u, 44u, 50u, 51u, 58u})
        s[w] = true;
    return s;
}

/** Seeded phase-shifting schedule: ~20% streaming windows. */
std::vector<bool>
seededSchedule(uint64_t seed)
{
    std::vector<bool> s(kNumWin);
    for (uint64_t w = 0; w < kNumWin; ++w)
        s[w] = mix64(w * 0x9e3779b97f4a7c15ull ^ seed) % 5 == 0;
    return s;
}

/**
 * Deterministic two-phase trace. Each window's miss behaviour is
 * history-independent by construction, which makes the full-replay
 * oracle analytically predictable:
 *   - resident windows loop 4x over 512 fresh-per-window heap blocks
 *     (~512 compulsory LLC misses per window, then in-cache reuse);
 *   - streaming windows scan never-revisited shard blocks (one LLC
 *     miss per record).
 * The phases also differ in code footprint, store fraction, and
 * branch-direction entropy, so the signature pass separates them.
 */
class PhaseTrace : public TraceSource
{
  public:
    explicit PhaseTrace(std::vector<bool> streaming,
                        uint64_t window = kWin)
        : streaming_(std::move(streaming)), window_(window)
    {
    }

    size_t
    fill(TraceRecord *buf, size_t max) override
    {
        const uint64_t total = streaming_.size() * window_;
        size_t n = 0;
        while (n < max && pos_ < total)
            buf[n++] = make(pos_++);
        return n;
    }

    void reset() override { pos_ = 0; }

  private:
    TraceRecord
    make(uint64_t pos) const
    {
        const uint64_t w = pos / window_;
        const uint64_t j = pos % window_;
        const uint64_t h = mix64(pos + 1);
        TraceRecord r;
        r.tid = 0;
        if (streaming_[w]) {
            r.pc = vaddr::kCodeBase + 0x4000 + (j % 512) * 4;
            r.op = MemOp::Load;
            r.kind = AccessKind::Shard;
            r.addr = vaddr::kShardBase + pos * 64;
            if (j % 4 == 0) {
                r.branch = BranchKind::Taken;
                r.target = r.pc + 8;
            }
        } else {
            r.pc = vaddr::kCodeBase + (j % 128) * 4;
            r.op = h % 4 == 0 ? MemOp::Store : MemOp::Load;
            r.kind = AccessKind::Heap;
            r.addr = vaddr::kHeapBase + (w * 512 + j % 512) * 64;
            if (j % 4 == 0) {
                r.branch = h & 8 ? BranchKind::Taken
                                 : BranchKind::NotTaken;
                r.target = r.pc + 8;
            }
        }
        return r;
    }

    std::vector<bool> streaming_;
    uint64_t window_;
    uint64_t pos_ = 0;
};

std::shared_ptr<const BufferedTrace>
makePhaseTrace(const std::vector<bool> &schedule,
               size_t chunk = BufferedTrace::kDefaultChunkRecords)
{
    PhaseTrace src(schedule);
    return BufferedTrace::materialize(src, kTotal, chunk);
}

HierarchyConfig
testConfig()
{
    HierarchyConfig cfg;
    cfg.numCores = 1;
    cfg.l3.sizeBytes = 1 * MiB;
    return cfg;
}

RepresentativeSampling
testRep(uint32_t sample_windows = 4, uint64_t seed = 7)
{
    RepresentativeSampling rep;
    rep.windowRecords = kWin;
    rep.warmupRecords = kWin / 2;
    rep.sampleWindows = sample_windows;
    rep.seed = seed;
    return rep;
}

void
expectSimEq(const SimResult &a, const SimResult &b, const char *what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    const CacheLevelStats *as[] = {&a.l1i, &a.l1d, &a.l2, &a.l3, &a.l4};
    const CacheLevelStats *bs[] = {&b.l1i, &b.l1d, &b.l2, &b.l3, &b.l4};
    for (int lvl = 0; lvl < 5; ++lvl) {
        for (uint32_t k = 0; k < kNumAccessKinds; ++k) {
            ASSERT_EQ(as[lvl]->accesses[k], bs[lvl]->accesses[k])
                << what << " level " << lvl << " kind " << k;
            ASSERT_EQ(as[lvl]->misses[k], bs[lvl]->misses[k])
                << what << " level " << lvl << " kind " << k;
        }
    }
    EXPECT_EQ(a.l3Evictions, b.l3Evictions) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
    EXPECT_EQ(a.backInvalidations, b.backInvalidations) << what;
}

SimResult
fullReplayOracle(const BufferedTrace &trace)
{
    CacheHierarchy hier(testConfig());
    return runTrace(trace, hier, 0, trace.size());
}

// ---------------------------------------------------------------------
// Signature extraction separates the phases.

TEST(Signatures, SeparatePhasesAndRespectWindowGeometry)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    const std::vector<WindowSignature> sigs =
        extractWindowSignatures(*trace, kTotal, kWin);
    ASSERT_EQ(sigs.size(), kNumWin);
    const std::vector<bool> schedule = fixedSchedule();
    for (size_t w = 0; w < sigs.size(); ++w) {
        SCOPED_TRACE("window " + std::to_string(w));
        EXPECT_EQ(sigs[w].begin, w * kWin);
        EXPECT_EQ(sigs[w].records, kWin);
        const uint64_t shard = sigs[w].dataAccesses[
            static_cast<uint32_t>(AccessKind::Shard)];
        const uint64_t heap = sigs[w].dataAccesses[
            static_cast<uint32_t>(AccessKind::Heap)];
        if (schedule[w]) {
            EXPECT_EQ(shard, kWin);
            EXPECT_EQ(heap, 0u);
            EXPECT_EQ(sigs[w].stores, 0u);
            EXPECT_NEAR(sigs[w].branchEntropy(), 0.0, 1e-9);
            // ~2000 distinct streamed blocks vs ~512 resident ones.
            EXPECT_GT(sigs[w].shardFootprint, 1'500.0);
        } else {
            EXPECT_EQ(heap, kWin);
            EXPECT_EQ(shard, 0u);
            EXPECT_GT(sigs[w].stores, kWin / 8);
            EXPECT_GT(sigs[w].branchEntropy(), 0.9);
            EXPECT_NEAR(sigs[w].heapFootprint, 512.0, 160.0);
        }
    }
}

// ---------------------------------------------------------------------
// Tentpole claim 1: the clustered estimate covers the oracle with its
// own reported band -- on the fixed schedule and across schedule and
// clustering seeds.

TEST(ClusteredSampling, OracleInsideReportedBand)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    const SimResult oracle = fullReplayOracle(*trace);
    const SamplingPlan plan =
        buildClusteredPlan(*trace, kTotal, testRep());
    ASSERT_TRUE(plan.enabled());

    CacheHierarchy hier(testConfig());
    const SimResult got = runTracePlanned(*trace, hier, plan);
    EXPECT_GT(got.sampledWindows, 0u);
    EXPECT_LE(got.sampledWindows, 4u);
    EXPECT_EQ(got.representedWindows, kNumWin);
    EXPECT_GT(got.l3MissVar, 0.0);

    const double o = static_cast<double>(oracle.l3.totalMisses());
    EXPECT_GE(o, got.l3MissBandLo())
        << "band " << got.l3MissBandLo() << ".." << got.l3MissBandHi();
    EXPECT_LE(o, got.l3MissBandHi())
        << "band " << got.l3MissBandLo() << ".." << got.l3MissBandHi();
}

TEST(ClusteredSampling, BandCoversOracleAcrossSeeds)
{
    for (const uint64_t sched_seed : {11ull, 29ull, 71ull}) {
        const auto trace = makePhaseTrace(seededSchedule(sched_seed));
        const SimResult oracle = fullReplayOracle(*trace);
        for (const uint64_t kmeans_seed : {1ull, 2ull, 3ull}) {
            SCOPED_TRACE("schedule seed " +
                         std::to_string(sched_seed) + " kmeans seed " +
                         std::to_string(kmeans_seed));
            const SamplingPlan plan = buildClusteredPlan(
                *trace, kTotal, testRep(4, kmeans_seed));
            CacheHierarchy hier(testConfig());
            const SimResult got = runTracePlanned(*trace, hier, plan);
            const double o =
                static_cast<double>(oracle.l3.totalMisses());
            EXPECT_GE(o, got.l3MissBandLo());
            EXPECT_LE(o, got.l3MissBandHi());
        }
    }
}

// ---------------------------------------------------------------------
// Tentpole claim 2: clustered beats uniform at an equal
// simulated-record budget on the phase-irregular schedule.

TEST(ClusteredSampling, BeatsUniformAtEqualBudget)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    const SimResult oracle = fullReplayOracle(*trace);
    const RepresentativeSampling rep = testRep();

    const SamplingPlan clustered =
        buildClusteredPlan(*trace, kTotal, rep);
    const SamplingPlan uniform = buildUniformPlan(kTotal, rep);

    // Equal knobs => equal measured-record budget.
    uint64_t measuredC = 0, measuredU = 0;
    for (const SampleWindow &w : clustered.windows)
        measuredC += w.records;
    for (const SampleWindow &w : uniform.windows)
        measuredU += w.records;
    EXPECT_EQ(measuredC, measuredU);

    CacheHierarchy hc(testConfig());
    const SimResult gc = runTracePlanned(*trace, hc, clustered);
    CacheHierarchy hu(testConfig());
    const SimResult gu = runTracePlanned(*trace, hu, uniform);

    const double o = static_cast<double>(oracle.l3.totalMisses());
    const double errC =
        std::abs(static_cast<double>(gc.l3.totalMisses()) - o);
    const double errU =
        std::abs(static_cast<double>(gu.l3.totalMisses()) - o);
    EXPECT_LT(errC, errU)
        << "clustered err " << errC << " vs uniform err " << errU
        << " (oracle " << o << ")";
    // And not by a hair: the uniform plan aliases against the phase
    // schedule while clustering recovers the exact phase weights.
    EXPECT_LT(errC, errU / 2);
}

// ---------------------------------------------------------------------
// Tentpole claim 3 / properties: weights partition the window count;
// full selection reconstructs the oracle bit-identically.

TEST(SamplingPlans, WeightsSumToTotalWindowCount)
{
    const auto trace = makePhaseTrace(seededSchedule(5));
    for (const uint32_t k : {1u, 2u, 4u, 7u, 13u, 60u, 96u}) {
        for (const uint64_t window : {kWin, kWin - 257, kWin + 393}) {
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " window=" + std::to_string(window));
            RepresentativeSampling rep;
            rep.windowRecords = window;
            rep.warmupRecords = window / 2;
            rep.sampleWindows = k;
            rep.seed = 3;
            const uint64_t total_windows =
                (kTotal + window - 1) / window;

            for (const SamplingPlan &plan :
                 {buildClusteredPlan(*trace, kTotal, rep),
                  buildUniformPlan(kTotal, rep)}) {
                ASSERT_TRUE(plan.enabled());
                EXPECT_EQ(plan.totalWindows, total_windows);
                uint64_t weight_sum = 0;
                uint64_t prev_begin = 0;
                for (size_t i = 0; i < plan.windows.size(); ++i) {
                    weight_sum += plan.windows[i].weight;
                    if (i > 0) { // sorted, distinct
                        EXPECT_GT(plan.windows[i].begin, prev_begin);
                    }
                    prev_begin = plan.windows[i].begin;
                    EXPECT_EQ(plan.windows[i].begin % window, 0u);
                }
                EXPECT_EQ(weight_sum, total_windows);
                EXPECT_LE(plan.windows.size(),
                          std::min<uint64_t>(k, total_windows));
            }
        }
    }
}

TEST(SamplingPlans, FullSelectionReconstructsOracleBitIdentically)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    const SimResult oracle = fullReplayOracle(*trace);

    // k >= N: every window selected with weight 1.
    const SamplingPlan plan = buildClusteredPlan(
        *trace, kTotal, testRep(static_cast<uint32_t>(kNumWin)));
    ASSERT_EQ(plan.windows.size(), kNumWin);
    for (const SampleWindow &w : plan.windows)
        EXPECT_EQ(w.weight, 1u);

    CacheHierarchy hier(testConfig());
    const SimResult got = runTracePlanned(*trace, hier, plan);
    expectSimEq(got, oracle, "k == N reconstruction");
    EXPECT_EQ(got.sampledWindows, kNumWin);
    EXPECT_EQ(got.representedWindows, kNumWin);

    // The uniform k == N plan goes through the same degenerate path.
    const SamplingPlan uplan = buildUniformPlan(
        kTotal, testRep(static_cast<uint32_t>(kNumWin)));
    CacheHierarchy uh(testConfig());
    expectSimEq(runTracePlanned(*trace, uh, uplan), oracle,
                "uniform k == N reconstruction");
}

// ---------------------------------------------------------------------
// Tentpole claim 5: band fields survive operator+= and sweep fan-out.

TEST(SamplingPlans, BandFieldsSurviveOperatorPlusEq)
{
    SimResult a;
    a.sampledWindows = 3;
    a.representedWindows = 17;
    a.l3MissVar = 1.5;
    SimResult b;
    b.sampledWindows = 2;
    b.representedWindows = 13;
    b.l3MissVar = 2.25;
    a += b;
    EXPECT_EQ(a.sampledWindows, 5u);
    EXPECT_EQ(a.representedWindows, 30u);
    EXPECT_DOUBLE_EQ(a.l3MissVar, 3.75);
}

TEST(SamplingPlans, SweepResultsIdenticalAcrossThreadCounts)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    std::vector<HierarchyConfig> configs;
    for (const uint64_t l3 : {512 * KiB, 1 * MiB, 4 * MiB})
        configs.push_back(testConfig()),
            configs.back().l3.sizeBytes = l3;

    SweepOptions base;
    base.policy = SamplingPolicy::kClustered;
    base.rep = testRep();
    base.threads = 1;
    const std::vector<SimResult> want =
        sweepHierarchies(*trace, configs, 0, kTotal, base);
    ASSERT_EQ(want.size(), configs.size());
    for (const SimResult &r : want) {
        EXPECT_GT(r.sampledWindows, 0u);
        EXPECT_EQ(r.representedWindows, kNumWin);
        EXPECT_GT(r.l3MissVar, 0.0);
    }

    for (const uint32_t threads : {2u, 4u, 8u}) {
        SweepOptions opt = base;
        opt.threads = threads;
        const std::vector<SimResult> got =
            sweepHierarchies(*trace, configs, 0, kTotal, opt);
        for (size_t i = 0; i < configs.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " config=" + std::to_string(i));
            expectSimEq(got[i], want[i], "threaded sweep");
            EXPECT_EQ(got[i].sampledWindows, want[i].sampledWindows);
            EXPECT_EQ(got[i].representedWindows,
                      want[i].representedWindows);
            // Bit-identical variance: same plan, same merge order.
            EXPECT_EQ(got[i].l3MissVar, want[i].l3MissVar);
        }
    }
}

TEST(SamplingPlans, WorkloadSweepCarriesBandThroughSystemResult)
{
    SweepControl control;
    control.policy = SamplingPolicy::kClustered;
    control.rep.windowRecords = 4'000;
    control.rep.warmupRecords = 1'000;
    control.rep.sampleWindows = 5;
    control.rep.seed = 9;
    control.threads = 1;

    RunOptions opt;
    opt.cores = 2;
    opt.warmupRecords = 20'000;
    opt.measureRecords = 60'000;
    std::vector<RunOptions> options;
    for (const uint64_t l3 : {1 * MiB, 8 * MiB}) {
        opt.l3Bytes = l3;
        options.push_back(opt);
    }

    const WorkloadProfile profile = WorkloadProfile::s1Leaf();
    const PlatformConfig platform = PlatformConfig::plt1();
    const std::vector<SystemResult> want =
        runWorkloadSweep(profile, platform, options, control);
    ASSERT_EQ(want.size(), options.size());
    const uint64_t total_windows =
        (recordBudget(opt).total() + control.rep.windowRecords - 1) /
        control.rep.windowRecords;
    for (const SystemResult &r : want) {
        EXPECT_GT(r.sampledWindows, 0u);
        EXPECT_LE(r.sampledWindows, 5u);
        EXPECT_EQ(r.representedWindows, total_windows);
        EXPECT_GT(r.l3MissVar, 0.0);
        EXPECT_GE(r.l3MissBandHi(), r.l3MissBandLo());
        EXPECT_GT(r.ipcPerThread, 0.0);
    }

    for (const uint32_t threads : {2u, 4u, 8u}) {
        SweepControl c = control;
        c.threads = threads;
        const std::vector<SystemResult> got =
            runWorkloadSweep(profile, platform, options, c);
        for (size_t i = 0; i < options.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " option=" + std::to_string(i));
            EXPECT_EQ(got[i].instructions, want[i].instructions);
            EXPECT_EQ(got[i].l3.totalAccesses(),
                      want[i].l3.totalAccesses());
            EXPECT_EQ(got[i].l3.totalMisses(),
                      want[i].l3.totalMisses());
            EXPECT_EQ(got[i].branches, want[i].branches);
            EXPECT_EQ(got[i].sampledWindows, want[i].sampledWindows);
            EXPECT_EQ(got[i].representedWindows,
                      want[i].representedWindows);
            EXPECT_EQ(got[i].l3MissVar, want[i].l3MissVar);
            EXPECT_EQ(got[i].ipcPerThread, want[i].ipcPerThread);
        }
    }
}

// ---------------------------------------------------------------------
// Tentpole claim 4: two-pass replay regression. The signature pass
// must leave the buffer bit-identical, replay must not care that a
// signature pass ran first, cursor rewinds must be deterministic, and
// signatures must be invariant to chunk granularity (including
// windows straddling chunk edges).

std::vector<uint8_t>
bufferBytes(const BufferedTrace &trace)
{
    std::vector<uint8_t> bytes;
    for (size_t c = 0; c < trace.numChunks(); ++c) {
        const BufferedTrace::Span s = trace.chunk(c);
        const uint8_t *p =
            reinterpret_cast<const uint8_t *>(s.data);
        bytes.insert(bytes.end(), p,
                     p + s.count * sizeof(TraceRecord));
    }
    return bytes;
}

TEST(TwoPassReplay, SignaturePassLeavesBufferBitIdentical)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    const std::vector<uint8_t> before = bufferBytes(*trace);
    const std::vector<WindowSignature> sigs =
        extractWindowSignatures(*trace, kTotal, kWin);
    ASSERT_EQ(sigs.size(), kNumWin);
    const std::vector<uint8_t> after = bufferBytes(*trace);
    ASSERT_EQ(before.size(), after.size());
    EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size()),
              0);

    // Simulation after the signature pass == simulation without it.
    const SimResult fresh = fullReplayOracle(*trace);
    CacheHierarchy hier(testConfig());
    expectSimEq(runTrace(*trace, hier, 0, kTotal), fresh,
                "simulate after signature pass");
}

TEST(TwoPassReplay, CursorRewindIsDeterministic)
{
    const auto trace = makePhaseTrace(fixedSchedule());
    BufferedTrace::Cursor cursor(trace);
    std::vector<TraceRecord> first(4'096);
    std::vector<TraceRecord> second(4'096);
    ASSERT_EQ(cursor.fill(first.data(), first.size()), first.size());
    // Drain a bit more so the rewind starts mid-stream.
    ASSERT_EQ(cursor.fill(second.data(), 1'000), 1'000u);
    cursor.reset();
    ASSERT_EQ(cursor.fill(second.data(), second.size()),
              second.size());
    EXPECT_EQ(std::memcmp(first.data(), second.data(),
                          first.size() * sizeof(TraceRecord)),
              0);

    // A trace re-materialized through a rewound cursor is the same
    // trace: the signature pass and the simulate pass see identical
    // records even when they consume through separate cursors.
    cursor.reset();
    const auto again = BufferedTrace::materialize(cursor, kTotal);
    ASSERT_EQ(again->size(), trace->size());
    EXPECT_EQ(bufferBytes(*again), bufferBytes(*trace));
}

TEST(TwoPassReplay, SignaturesInvariantToChunkGranularity)
{
    // Window length 1'500 against chunk sizes 256 / 1'000 / default:
    // every window straddles chunk edges in the small-chunk builds.
    const std::vector<bool> schedule = seededSchedule(13);
    const uint64_t window = 1'500;
    const auto baseline = makePhaseTrace(schedule);
    const std::vector<WindowSignature> want =
        extractWindowSignatures(*baseline, kTotal, window);
    for (const size_t chunk : {256u, 1'000u, 1u << 14}) {
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        const auto trace = makePhaseTrace(schedule, chunk);
        const std::vector<WindowSignature> got =
            extractWindowSignatures(*trace, kTotal, window);
        ASSERT_EQ(got.size(), want.size());
        for (size_t w = 0; w < got.size(); ++w) {
            SCOPED_TRACE("window " + std::to_string(w));
            EXPECT_EQ(got[w].begin, want[w].begin);
            EXPECT_EQ(got[w].records, want[w].records);
            for (uint32_t k = 0; k < kNumAccessKinds; ++k)
                EXPECT_EQ(got[w].dataAccesses[k],
                          want[w].dataAccesses[k]);
            EXPECT_EQ(got[w].stores, want[w].stores);
            EXPECT_EQ(got[w].branches, want[w].branches);
            EXPECT_EQ(got[w].taken, want[w].taken);
            EXPECT_EQ(got[w].codeFootprint, want[w].codeFootprint);
            EXPECT_EQ(got[w].heapFootprint, want[w].heapFootprint);
            EXPECT_EQ(got[w].shardFootprint, want[w].shardFootprint);
            EXPECT_EQ(got[w].stackFootprint, want[w].stackFootprint);
        }
    }

    // Planned replay over a tiny-chunk build still covers the oracle:
    // each 2'000-record window spans ~8 chunks of 256 records, so
    // every window boundary and warmup straddles chunk edges, and the
    // chunk geometry must be invisible to the estimate.
    const auto small = makePhaseTrace(schedule, 256);
    const SamplingPlan plan =
        buildClusteredPlan(*small, kTotal, testRep(4, 17));
    CacheHierarchy hier(testConfig());
    const SimResult got = runTracePlanned(*small, hier, plan);
    const SimResult oracle = fullReplayOracle(*small);
    const double o = static_cast<double>(oracle.l3.totalMisses());
    EXPECT_GE(o, got.l3MissBandLo());
    EXPECT_LE(o, got.l3MissBandHi());
}

// ---------------------------------------------------------------------
// Knob plumbing.

TEST(SamplingKnobs, PolicyNamesAndSeedResolution)
{
    EXPECT_STREQ(samplingPolicyName(SamplingPolicy::kOff), "off");
    EXPECT_STREQ(samplingPolicyName(SamplingPolicy::kUniform),
                 "uniform");
    EXPECT_STREQ(samplingPolicyName(SamplingPolicy::kClustered),
                 "clustered");

    EXPECT_EQ(sampleSeed(42), 42u);
    ::setenv("WSEARCH_SAMPLE_SEED", "1234", 1);
    EXPECT_EQ(sampleSeed(0), 1234u);
    ::unsetenv("WSEARCH_SAMPLE_SEED");
    EXPECT_NE(sampleSeed(0), 0u); // fixed built-in default
}

TEST(SamplingKnobs, DefaultRepHonoursEnvOverrides)
{
    const RepresentativeSampling def =
        defaultRepresentativeSampling(960'000);
    EXPECT_EQ(def.windowRecords, 10'000u);
    // Default warmup is one full window -- sized so the bench_fig6bc
    // clustered-vs-oracle gate stays inside its band (cold-state bias
    // shrinks with warmup, see DESIGN.md "Representative sampling").
    EXPECT_EQ(def.warmupRecords, 10'000u);
    EXPECT_EQ(def.sampleWindows, 12u);
    EXPECT_TRUE(def.enabled());

    ::setenv("WSEARCH_SAMPLE_WINDOWS", "48", 1);
    ::setenv("WSEARCH_SAMPLE_CLUSTERS", "6", 1);
    ::setenv("WSEARCH_SAMPLE_WARMUP", "7500", 1);
    const RepresentativeSampling env =
        defaultRepresentativeSampling(960'000);
    EXPECT_EQ(env.windowRecords, 20'000u);
    EXPECT_EQ(env.sampleWindows, 6u);
    EXPECT_EQ(env.warmupRecords, 7'500u);
    ::unsetenv("WSEARCH_SAMPLE_WINDOWS");
    ::unsetenv("WSEARCH_SAMPLE_CLUSTERS");
    ::unsetenv("WSEARCH_SAMPLE_WARMUP");
}

TEST(SamplingKnobs, UniformPlanShape)
{
    RepresentativeSampling rep;
    rep.windowRecords = 1'000;
    rep.warmupRecords = 500;
    rep.sampleWindows = 4;
    const SamplingPlan plan = buildUniformPlan(60'000, rep);
    ASSERT_EQ(plan.windows.size(), 4u);
    EXPECT_EQ(plan.totalWindows, 60u);
    const uint64_t begins[] = {0, 15'000, 30'000, 45'000};
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(plan.windows[i].begin, begins[i]);
        EXPECT_EQ(plan.windows[i].records, 1'000u);
        EXPECT_EQ(plan.windows[i].weight, 15u);
    }
    // Window 0 has no records before it to re-warm from; the other
    // three each pay the 500-record warmup.
    EXPECT_EQ(plan.simulatedRecords(), 1'000u + 3u * 1'500u);
    EXPECT_NEAR(plan.simulatedFraction(), 5'500.0 / 60'000.0, 1e-12);
}

} // namespace
} // namespace wsearch
