#include <gtest/gtest.h>

#include "memsim/hierarchy.hh"

namespace wsearch {
namespace {

HierarchyConfig
l4Config(bool fully_assoc = false, bool victim_fill = true)
{
    HierarchyConfig h;
    h.numCores = 1;
    h.l1i = {1 * KiB, 64, 4};
    h.l1d = {1 * KiB, 64, 4};
    h.l2 = {2 * KiB, 64, 4};
    h.l3 = {4 * 64, 64, 1}; // tiny direct-mapped L3: easy evictions
    h.l4 = cache_gen_victim(64 * KiB, 64, fully_assoc, victim_fill);
    return h;
}

TEST(L4Victim, FilledByL3Eviction)
{
    CacheHierarchy h(l4Config());
    const uint64_t a = 0;
    const uint64_t conflict = 4 * 64; // same L3 set
    h.accessData(0, 0, a, false, AccessKind::Heap);        // a -> L3
    h.accessData(0, 0, conflict, false, AccessKind::Heap); // evicts a
    EXPECT_GT(h.l3Evictions(), 0u);
    // a is gone from L3 but must now hit in the L4 (victim fill).
    // Force it out of L1/L2 first by thrashing their sets.
    for (uint64_t i = 2; i <= 40; ++i)
        h.accessData(0, 0, i * 4 * 64ull, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L4);
}

TEST(L4Victim, MissDoesNotAllocate)
{
    CacheHierarchy h(l4Config());
    // First-touch miss flows to memory and must not populate the L4.
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    EXPECT_EQ(h.l4Stats().totalMisses(), 1u);
    // Evict from L1/L2/L3 without evicting 0x9000's L3 line...
    // Simply verify stats: the L4 recorded a miss and no hit follows
    // from that memory fill alone.
    EXPECT_EQ(h.l4Stats().totalAccesses(), 1u);
}

TEST(L4Victim, HitLeavesLineResident)
{
    CacheHierarchy h(l4Config());
    const uint64_t a = 0;
    h.accessData(0, 0, a, false, AccessKind::Heap);
    h.accessData(0, 0, 4 * 64, false, AccessKind::Heap); // evict a -> L4
    for (uint64_t i = 2; i <= 40; ++i)
        h.accessData(0, 0, i * 4 * 64ull, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L4);
    // Memory-side cache: the line stays in the L4, so after the same
    // thrash pattern it hits again.
    for (uint64_t i = 41; i <= 80; ++i)
        h.accessData(0, 0, i * 4 * 64ull, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L4);
}

TEST(L4OnMiss, AllocatesOnMiss)
{
    CacheHierarchy h(l4Config(false, /*victim_fill=*/false));
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    EXPECT_EQ(h.l4Stats().totalMisses(), 1u);
    // Thrash L1/L2/L3, then the block should hit in L4 even though the
    // L3 never evicted it into the L4 (it was allocated on miss).
    for (uint64_t i = 2; i <= 40; ++i)
        h.accessData(0, 0, 0x20000 + i * 4 * 64ull, false,
                     AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, 0x9000, false, AccessKind::Heap),
              HitLevel::L4);
}

TEST(L4, FullyAssociativeVariantWorks)
{
    CacheHierarchy h(l4Config(true));
    const uint64_t a = 0;
    h.accessData(0, 0, a, false, AccessKind::Heap);
    h.accessData(0, 0, 4 * 64, false, AccessKind::Heap);
    for (uint64_t i = 2; i <= 40; ++i)
        h.accessData(0, 0, i * 4 * 64ull, false, AccessKind::Heap);
    EXPECT_EQ(h.accessData(0, 0, a, false, AccessKind::Heap),
              HitLevel::L4);
}

TEST(L4, DirectMappedConflicts)
{
    // Two blocks mapping to the same direct-mapped L4 slot conflict;
    // a fully-associative L4 of the same size keeps both. This is the
    // paper's associativity sensitivity (Figure 14, "Associative").
    const uint64_t l4_blocks = 64 * KiB / 64; // 1024 slots
    const uint64_t a = 0;
    const uint64_t b = l4_blocks * 64; // same slot as a

    auto run = [&](bool fa) {
        CacheHierarchy h(l4Config(fa));
        // Route both blocks through L3 evictions into the L4.
        h.accessData(0, 0, a, false, AccessKind::Heap);
        h.accessData(0, 0, b, false, AccessKind::Heap); // same L3 set too
        h.accessData(0, 0, 8 * 64, false, AccessKind::Heap); // evict b
        h.accessData(0, 0, 12 * 64, false, AccessKind::Heap);
        // Thrash private caches.
        for (uint64_t i = 64; i <= 128; ++i)
            h.accessData(0, 0, i * 4 * 64ull, false, AccessKind::Heap);
        const bool a_in_l4 =
            h.accessData(0, 0, a, false, AccessKind::Heap) ==
            HitLevel::L4;
        const bool b_in_l4 =
            h.accessData(0, 0, b, false, AccessKind::Heap) ==
            HitLevel::L4;
        return std::make_pair(a_in_l4, b_in_l4);
    };

    const auto [dm_a, dm_b] = run(false);
    const auto [fa_a, fa_b] = run(true);
    // Direct-mapped: at most one of the two conflicting blocks
    // survives. Fully associative: both can be resident.
    EXPECT_LE(int(dm_a) + int(dm_b), 1);
    EXPECT_EQ(int(fa_a) + int(fa_b), 2);
}

TEST(L4, StatsOnlySeeL3Misses)
{
    CacheHierarchy h(l4Config());
    // An L1 hit must not touch L4 stats.
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap);
    const uint64_t l4_accesses = h.l4Stats().totalAccesses();
    h.accessData(0, 0, 0x9000, false, AccessKind::Heap); // L1 hit
    EXPECT_EQ(h.l4Stats().totalAccesses(), l4_accesses);
}

} // namespace
} // namespace wsearch
