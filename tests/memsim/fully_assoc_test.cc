#include <gtest/gtest.h>

#include "memsim/fully_assoc.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(FullyAssoc, MissThenHit)
{
    FullyAssocLruCache c(4 * KiB, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F));
}

TEST(FullyAssoc, ExactLruOrder)
{
    FullyAssocLruCache c(4 * 64, 64); // 4 blocks
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * 64);
    c.access(0); // 0 is now MRU; LRU is 1
    uint64_t evicted = FullyAssocLruCache::kNoBlockFa;
    c.access(4 * 64, &evicted);
    EXPECT_EQ(evicted, 64u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
}

TEST(FullyAssoc, CapacityRespected)
{
    FullyAssocLruCache c(16 * 64, 64);
    for (uint64_t i = 0; i < 1000; ++i)
        c.access(i * 64);
    EXPECT_EQ(c.population(), 16u);
    // The 16 most recent blocks are resident.
    for (uint64_t i = 984; i < 1000; ++i)
        EXPECT_TRUE(c.probe(i * 64));
    EXPECT_FALSE(c.probe(983 * 64));
}

TEST(FullyAssoc, NoConflictMisses)
{
    // Any working set <= capacity never misses after first touch,
    // regardless of address pattern (the defining FA property).
    FullyAssocLruCache c(64 * 64, 64);
    Rng rng(2);
    std::vector<uint64_t> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(rng.nextRange(1ull << 40) * 64);
    for (auto b : blocks)
        c.access(b);
    for (int round = 0; round < 10; ++round)
        for (auto b : blocks)
            EXPECT_TRUE(c.access(b));
}

TEST(FullyAssoc, TouchDoesNotAllocate)
{
    FullyAssocLruCache c(4 * KiB, 64);
    EXPECT_FALSE(c.touch(0x7000));
    EXPECT_FALSE(c.probe(0x7000));
    c.insert(0x7000);
    EXPECT_TRUE(c.touch(0x7000));
}

TEST(FullyAssoc, TouchRefreshesLru)
{
    FullyAssocLruCache c(2 * 64, 64);
    c.access(0);
    c.access(64);
    c.touch(0); // 64 becomes LRU
    uint64_t evicted = FullyAssocLruCache::kNoBlockFa;
    c.access(128, &evicted);
    EXPECT_EQ(evicted, 64u);
}

TEST(FullyAssoc, InvalidateAndReuse)
{
    FullyAssocLruCache c(4 * 64, 64);
    c.access(0);
    c.access(64);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.probe(0));
    EXPECT_EQ(c.population(), 1u);
    // Free node must be reusable.
    c.access(128);
    c.access(192);
    c.access(256);
    EXPECT_EQ(c.population(), 4u);
}

TEST(FullyAssoc, InsertIdempotent)
{
    FullyAssocLruCache c(4 * 64, 64);
    c.insert(0);
    c.insert(0);
    EXPECT_EQ(c.population(), 1u);
}

TEST(FullyAssoc, StressAgainstCapacity)
{
    FullyAssocLruCache c(256 * 64, 64);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i) {
        c.access(rng.nextRange(512) * 64);
        ASSERT_LE(c.population(), 256u);
    }
}

} // namespace
} // namespace wsearch
