#include <gtest/gtest.h>

#include "memsim/miss_class.hh"

namespace wsearch {
namespace {

TEST(MissClass, FirstTouchIsCold)
{
    MissClassifier mc({4 * KiB, 64, 4});
    mc.access(0x1000, AccessKind::Heap);
    EXPECT_EQ(mc.breakdown().totalCold(), 1u);
    EXPECT_EQ(mc.breakdown().totalCapacity(), 0u);
    EXPECT_EQ(mc.breakdown().totalConflict(), 0u);
}

TEST(MissClass, HitCountsNoMiss)
{
    MissClassifier mc({4 * KiB, 64, 4});
    mc.access(0x1000, AccessKind::Heap);
    mc.access(0x1000, AccessKind::Heap);
    EXPECT_EQ(mc.breakdown().hits, 1u);
    EXPECT_EQ(mc.breakdown().accesses, 2u);
}

TEST(MissClass, ConflictWhenFaWouldHit)
{
    // Direct-mapped cache with two blocks mapping to the same set but
    // total working set far below capacity: pure conflict misses.
    MissClassifier mc({4 * KiB, 64, 1}); // 64 sets
    const uint64_t a = 0;
    const uint64_t b = 64 * 64; // same set as a
    mc.access(a, AccessKind::Heap);
    mc.access(b, AccessKind::Heap);
    mc.access(a, AccessKind::Heap); // would hit in FA: conflict
    mc.access(b, AccessKind::Heap);
    EXPECT_EQ(mc.breakdown().totalCold(), 2u);
    EXPECT_EQ(mc.breakdown().totalConflict(), 2u);
    EXPECT_EQ(mc.breakdown().totalCapacity(), 0u);
}

TEST(MissClass, CapacityWhenWorkingSetExceedsCache)
{
    // Cyclic sweep over 2x the capacity: after the cold pass, LRU
    // misses everything; FA shadow also misses => capacity.
    MissClassifier mc({4 * KiB, 64, 64}); // fully assoc 64 blocks
    const int blocks = 128;
    for (int round = 0; round < 3; ++round)
        for (int i = 0; i < blocks; ++i)
            mc.access(i * 64, AccessKind::Shard);
    const auto &b = mc.breakdown();
    EXPECT_EQ(b.totalCold(), 128u);
    EXPECT_EQ(b.totalConflict(), 0u);
    EXPECT_EQ(b.totalCapacity(), 2u * 128);
}

TEST(MissClass, PerKindAttribution)
{
    MissClassifier mc({4 * KiB, 64, 4});
    mc.access(0x1000, AccessKind::Heap);
    mc.access(0x2000, AccessKind::Shard);
    mc.access(0x3000, AccessKind::Code);
    const auto &b = mc.breakdown();
    EXPECT_EQ(b.cold[static_cast<int>(AccessKind::Heap)], 1u);
    EXPECT_EQ(b.cold[static_cast<int>(AccessKind::Shard)], 1u);
    EXPECT_EQ(b.cold[static_cast<int>(AccessKind::Code)], 1u);
}

TEST(MissClass, TotalsConsistent)
{
    MissClassifier mc({2 * KiB, 64, 2});
    Rng rng(5);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mc.access(rng.nextRange(256) * 64, AccessKind::Heap);
    const auto &b = mc.breakdown();
    EXPECT_EQ(b.accesses, static_cast<uint64_t>(n));
    EXPECT_EQ(b.hits + b.totalCold() + b.totalCapacity() +
                  b.totalConflict(),
              b.accesses);
}

} // namespace
} // namespace wsearch
