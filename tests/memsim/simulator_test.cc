#include <gtest/gtest.h>

#include "memsim/simulator.hh"

namespace wsearch {
namespace {

/** Source replaying a fixed record vector once. */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> recs)
        : recs_(std::move(recs))
    {
    }

    size_t
    fill(TraceRecord *buf, size_t max) override
    {
        size_t n = 0;
        while (n < max && pos_ < recs_.size())
            buf[n++] = recs_[pos_++];
        return n;
    }

    void reset() override { pos_ = 0; }

  private:
    std::vector<TraceRecord> recs_;
    size_t pos_ = 0;
};

TraceRecord
load(uint64_t pc, uint64_t addr, AccessKind kind = AccessKind::Heap)
{
    TraceRecord r;
    r.pc = pc;
    r.addr = addr;
    r.op = MemOp::Load;
    r.kind = kind;
    return r;
}

HierarchyConfig
tiny()
{
    HierarchyConfig h;
    h.l1i = {1 * KiB, 64, 4};
    h.l1d = {1 * KiB, 64, 4};
    h.l2 = {4 * KiB, 64, 4};
    h.l3 = {16 * KiB, 64, 4};
    return h;
}

TEST(RunTrace, CountsMeasuredInstructionsOnly)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 100; ++i)
        recs.push_back(load(0x400000 + i * 4, 0x9000 + i * 64));
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 30, 70);
    EXPECT_EQ(res.instructions, 70u);
    EXPECT_EQ(res.l1i.totalAccesses(), 70u);
    EXPECT_EQ(res.l1d.totalAccesses(), 70u);
}

TEST(RunTrace, WarmupStateSurvivesStatReset)
{
    // Access the same block during warmup and measurement: the
    // measured access must be a hit (contents preserved).
    std::vector<TraceRecord> recs = {load(0x400000, 0x9000),
                                     load(0x400000, 0x9000)};
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 1, 1);
    EXPECT_EQ(res.instructions, 1u);
    EXPECT_EQ(res.l1d.totalMisses(), 0u);
}

TEST(RunTrace, StopsAtSourceExhaustion)
{
    std::vector<TraceRecord> recs(10, load(0x400000, 0x9000));
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 0, 1000);
    EXPECT_EQ(res.instructions, 10u);
}

TEST(RunTrace, InstrOnlyRecordsSkipDataPath)
{
    std::vector<TraceRecord> recs;
    TraceRecord r;
    r.pc = 0x400000;
    r.op = MemOp::None;
    recs.assign(50, r);
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 0, 50);
    EXPECT_EQ(res.l1d.totalAccesses(), 0u);
    EXPECT_EQ(res.l1i.totalAccesses(), 50u);
}

TEST(RunTrace, StoresMarkDirtyAndWriteBack)
{
    std::vector<TraceRecord> recs;
    TraceRecord st = load(0x400000, 0);
    st.op = MemOp::Store;
    recs.push_back(st);
    // Stream enough blocks to push the dirty line out of the L2.
    for (int i = 1; i <= 300; ++i)
        recs.push_back(load(0x400000, i * 64ull));
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 0, recs.size());
    EXPECT_GT(res.writebacks, 0u);
}

TEST(SimResultMerge, SumsEveryCounter)
{
    // Mirror of ServeSnapshot::merge: counters add field-wise, so a
    // result accumulated over two sampled windows equals the sum of
    // the windows' results.
    SimResult a;
    a.instructions = 100;
    a.l1d.record(AccessKind::Heap, true);
    a.l1d.record(AccessKind::Heap, false);
    a.l2.record(AccessKind::Code, true);
    a.l4.prefetchIssued = 3;
    a.l3Evictions = 7;
    a.writebacks = 2;
    a.backInvalidations = 1;
    a.sampledWindows = 1;

    SimResult b;
    b.instructions = 40;
    b.l1d.record(AccessKind::Heap, true);
    b.l1d.record(AccessKind::Shard, false);
    b.l4.prefetchIssued = 4;
    b.l4.prefetchUseful = 2;
    b.l3Evictions = 3;
    b.sampledWindows = 1;

    SimResult sum = a;
    sum += b;
    EXPECT_EQ(sum.instructions, 140u);
    EXPECT_EQ(sum.l1d.accessesOf(AccessKind::Heap), 3u);
    EXPECT_EQ(sum.l1d.missesOf(AccessKind::Heap), 2u);
    EXPECT_EQ(sum.l1d.accessesOf(AccessKind::Shard), 1u);
    EXPECT_EQ(sum.l2.missesOf(AccessKind::Code), 1u);
    EXPECT_EQ(sum.l4.prefetchIssued, 7u);
    EXPECT_EQ(sum.l4.prefetchUseful, 2u);
    EXPECT_EQ(sum.l3Evictions, 10u);
    EXPECT_EQ(sum.writebacks, 2u);
    EXPECT_EQ(sum.backInvalidations, 1u);
    EXPECT_EQ(sum.sampledWindows, 2u);
}

TEST(SimResultMerge, MergeEqualsContiguousRunWhenStateCarries)
{
    // Two back-to-back measured halves merged == one full measurement
    // (same hierarchy, no reset between halves beyond the stats reset
    // merge semantics assume).
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 200; ++i)
        recs.push_back(load(0x400000 + i * 4, (i % 32) * 64ull));

    VectorSource whole(recs);
    CacheHierarchy h1(tiny());
    const SimResult full = runTrace(whole, h1, 0, 200);

    VectorSource halves(recs);
    CacheHierarchy h2(tiny());
    SimResult merged = runTrace(halves, h2, 0, 100);
    merged += runTrace(halves, h2, 0, 100);
    EXPECT_EQ(merged.instructions, full.instructions);
    EXPECT_EQ(merged.l1d.totalAccesses(), full.l1d.totalAccesses());
    EXPECT_EQ(merged.l1d.totalMisses(), full.l1d.totalMisses());
    EXPECT_EQ(merged.writebacks, full.writebacks);
}

TEST(RunTrace, BatchBoundaryExactness)
{
    // More records than one internal batch (8192) to cover the
    // batching loop.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 20000; ++i)
        recs.push_back(load(0x400000, (i % 64) * 64ull));
    VectorSource src(recs);
    CacheHierarchy hier(tiny());
    const SimResult res = runTrace(src, hier, 0, 20000);
    EXPECT_EQ(res.instructions, 20000u);
    EXPECT_EQ(res.l1d.totalAccesses(), 20000u);
}

} // namespace
} // namespace wsearch
