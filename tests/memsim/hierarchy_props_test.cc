/**
 * Statistical property tests of the full hierarchy against the
 * calibrated synthetic workload: the monotonicities every sweep bench
 * depends on.
 */
#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "trace/synthetic.hh"

namespace wsearch {
namespace {

WorkloadProfile
smallProfile()
{
    WorkloadProfile p = WorkloadProfile::s1LeafSweep();
    p.heapWorkingSetBytes = 8 * MiB;
    p.shardSpanBytes = 256 * MiB;
    return p;
}

SystemResult
runWith(const HierarchyConfig &h, uint64_t records = 1'500'000)
{
    const WorkloadProfile p = smallProfile();
    SyntheticSearchTrace trace(p, h.numCores * h.smtWays);
    SystemConfig cfg;
    cfg.hierarchy = HierarchySpec::fromLegacy(h);
    SystemSimulator sim(cfg);
    return sim.run(trace, records, records);
}

HierarchyConfig
baseHier(uint32_t cores = 2)
{
    HierarchyConfig h;
    h.numCores = cores;
    h.l3 = {1 * MiB, 64, 16};
    return h;
}

class L3SizeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(L3SizeSweep, MissesShrinkWithCapacity)
{
    const uint32_t cores = GetParam();
    double prev = 1e18;
    for (const uint64_t size : {256 * KiB, 1 * MiB, 4 * MiB}) {
        HierarchyConfig h = baseHier(cores);
        h.l3.sizeBytes = size;
        const SystemResult r = runWith(h);
        const double mpki = r.l3.mpkiTotal(r.instructions);
        EXPECT_LT(mpki, prev * 1.02) << "size " << size;
        prev = mpki;
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, L3SizeSweep, ::testing::Values(1, 2, 4));

TEST(HierarchyProps, CatWaysMonotone)
{
    double prev = 1e18;
    for (const uint32_t ways : {2u, 4u, 8u, 16u}) {
        HierarchyConfig h = baseHier();
        h.l3.partitionWays = ways;
        const SystemResult r = runWith(h);
        const double mpki = r.l3.mpkiTotal(r.instructions);
        EXPECT_LT(mpki, prev * 1.02) << "ways " << ways;
        prev = mpki;
    }
}

TEST(HierarchyProps, L4HitRateMonotoneInCapacity)
{
    double prev = -1.0;
    for (const uint64_t size : {512 * KiB, 2 * MiB, 8 * MiB}) {
        HierarchyConfig h = baseHier();
        h.l3.sizeBytes = 256 * KiB;
        h.l4 = cache_gen_victim(size, 64);
        const SystemResult r = runWith(h, 2'500'000);
        EXPECT_GT(r.l4.hitRateTotal(), prev - 0.01) << "size " << size;
        prev = r.l4.hitRateTotal();
    }
    EXPECT_GT(prev, 0.2);
}

TEST(HierarchyProps, BiggerBlocksCutShardMisses)
{
    // Sequential shard runs: larger blocks mean fewer block-grain
    // misses per byte consumed.
    HierarchyConfig small = baseHier(), big = baseHier();
    for (CacheConfig *c : {&small.l1i, &small.l1d, &small.l2, &small.l3})
        c->blockBytes = 32;
    for (CacheConfig *c : {&big.l1i, &big.l1d, &big.l2, &big.l3})
        c->blockBytes = 256;
    const SystemResult rs = runWith(small);
    const SystemResult rb = runWith(big);
    EXPECT_GT(rs.l1d.mpki(AccessKind::Shard, rs.instructions),
              rb.l1d.mpki(AccessKind::Shard, rb.instructions));
}

TEST(HierarchyProps, SmtSharesCachesMultiCoreDoesNot)
{
    // 4 threads on 1 core (SMT-4) vs 4 cores: the SMT configuration
    // must show higher private-cache pressure.
    HierarchyConfig smt = baseHier(1);
    smt.smtWays = 4;
    HierarchyConfig multi = baseHier(4);
    const SystemResult rs = runWith(smt);
    const SystemResult rm = runWith(multi);
    EXPECT_GT(rs.l1d.mpkiTotal(rs.instructions),
              rm.l1d.mpkiTotal(rm.instructions));
}

TEST(HierarchyProps, PrefetchersNeverBreakCorrectnessCounters)
{
    HierarchyConfig h = baseHier();
    h.prefetch = PrefetchConfig::allOn();
    const SystemResult r = runWith(h);
    // Hits + misses == accesses at every level (prefetch inserts are
    // not demand accesses and must not distort the books).
    for (const CacheLevelStats *s : {&r.l1i, &r.l1d, &r.l2, &r.l3}) {
        EXPECT_GE(s->totalAccesses(), s->totalMisses());
    }
    EXPECT_GT(r.l1d.prefetchIssued + r.l2.prefetchIssued, 0u);
}

} // namespace
} // namespace wsearch
