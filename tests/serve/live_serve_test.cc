/**
 * Serving-layer tests for the live index: LeafServer's live mode
 * (snapshot capture, version stamping, adoption rules), the live
 * LeafWorkerPool (completion versions, ServeSnapshot version range),
 * the background MergeWorker, and ClusterServer's rolling rollout
 * (draining, corrupted-handoff rejection, per-shard versions on the
 * merged page). Runs under the "serve" label so TSan covers the
 * snapshot swaps racing live traffic.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "search/corpus.hh"
#include "search/index.hh"
#include "search/live/live_index.hh"
#include "search/live/merge_worker.hh"
#include "serve/cluster.hh"
#include "serve/worker_pool.hh"

namespace wsearch {
namespace {

constexpr TermId kAllDocs = 7; // marker term present in every doc

SearchRequest
probe(uint32_t topk = 4096)
{
    SearchRequest req;
    req.query.id = 42;
    req.query.terms = {kAllDocs};
    req.query.conjunctive = false;
    req.query.topK = topk;
    return req;
}

std::set<DocId>
docsOf(const std::vector<ScoredDoc> &docs)
{
    std::set<DocId> out;
    for (const ScoredDoc &d : docs)
        out.insert(d.doc);
    return out;
}

/** Add docs [first, first+n) with the marker term and commit. */
uint64_t
ingest(LiveIndex &idx, DocId first, uint32_t n)
{
    for (DocId d = first; d < first + n; ++d)
        idx.add(d, {kAllDocs, static_cast<TermId>(100 + d % 3)});
    return idx.commit();
}

TEST(LiveLeaf, ServesSnapshotAndStampsVersion)
{
    LiveIndex idx;
    const uint64_t v = ingest(idx, 1, 5);

    LeafServer::Config lc;
    lc.numThreads = 2;
    LeafServer leaf(idx.snapshot(), lc);
    EXPECT_TRUE(leaf.live());
    EXPECT_EQ(leaf.currentVersion(), v);

    const SearchResponse r = leaf.serve(0, probe());
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.indexVersion, v);
    EXPECT_EQ(docsOf(r.docs), (std::set<DocId>{1, 2, 3, 4, 5}));
    EXPECT_EQ(leaf.queriesServed(), 1u);
    EXPECT_GT(leaf.footprint().heapBytes(), 0u);
}

TEST(LiveLeaf, AdoptionRules)
{
    LiveIndex idx;
    const uint64_t v1 = ingest(idx, 1, 3);
    LeafServer::Config lc;
    LeafServer leaf(idx.snapshot(), lc);
    const auto snap_v1 = idx.snapshot();

    // Newer version: adopted, traffic switches over.
    const uint64_t v2 = ingest(idx, 10, 2);
    ASSERT_GT(v2, v1);
    EXPECT_TRUE(leaf.adoptSnapshot(idx.snapshot()));
    EXPECT_EQ(leaf.currentVersion(), v2);
    EXPECT_EQ(leaf.snapshotsAdopted(), 1u);
    EXPECT_EQ(docsOf(leaf.serve(0, probe()).docs),
              (std::set<DocId>{1, 2, 3, 10, 11}));

    // Same version again (an idempotent re-rollout): accepted.
    EXPECT_TRUE(leaf.adoptSnapshot(idx.snapshot()));
    EXPECT_EQ(leaf.snapshotsAdopted(), 2u);

    // Null, torn (checksum mismatch), and stale handoffs: refused,
    // counted, current snapshot untouched.
    EXPECT_FALSE(leaf.adoptSnapshot(nullptr));
    EXPECT_FALSE(leaf.adoptSnapshot(idx.snapshot()->corruptedCopy()));
    EXPECT_FALSE(leaf.adoptSnapshot(snap_v1)); // version regression
    EXPECT_EQ(leaf.handoffsRejected(), 3u);
    EXPECT_EQ(leaf.currentVersion(), v2);
    EXPECT_EQ(leaf.serve(0, probe()).indexVersion, v2);
}

TEST(LivePool, CompletionsCarryTheServedVersion)
{
    LiveIndex idx;
    const uint64_t v1 = ingest(idx, 1, 4);

    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    LeafWorkerPool pool(idx.snapshot(), pc);

    std::atomic<uint64_t> seen_version{0};
    std::atomic<int> completions{0};
    std::atomic<size_t> expect_docs{4};
    auto done = [&](std::vector<ScoredDoc> &&docs, ServeOutcome out,
                    uint64_t version) {
        EXPECT_EQ(out, ServeOutcome::Ok);
        EXPECT_EQ(docs.size(), expect_docs.load());
        seen_version.store(version);
        ++completions;
    };
    ASSERT_EQ(pool.submitAsync(probe(), /*block=*/true, done),
              LeafWorkerPool::Admit::Accepted);
    pool.drain();
    EXPECT_EQ(completions.load(), 1);
    EXPECT_EQ(seen_version.load(), v1);

    // Adopt a newer snapshot through the pool's leaf; the version
    // range in the snapshot follows.
    const uint64_t v2 = ingest(idx, 10, 1);
    EXPECT_TRUE(pool.leafMutable().adoptSnapshot(idx.snapshot()));
    expect_docs.store(5);
    ASSERT_EQ(pool.submitAsync(probe(), true, done),
              LeafWorkerPool::Admit::Accepted);
    pool.drain();
    EXPECT_EQ(seen_version.load(), v2);

    const ServeSnapshot s = pool.snapshot();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.indexVersionLow, v2);
    EXPECT_EQ(s.indexVersionHigh, v2);
    EXPECT_EQ(s.snapshotsAdopted, 1u);
    EXPECT_EQ(s.handoffsRejected, 0u);
}

TEST(MergeWorkerTest, BackgroundMergeCompacts)
{
    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);

    MergeWorker::Config mc;
    mc.periodNs = 100'000; // 100 us polls on the real clock
    MergeWorker worker(idx, mc);

    DocId next = 1;
    for (int seg = 0; seg < 8; ++seg)
        ingest(idx, (next += 10), 5);
    // The worker owns compaction; wait for it to catch up.
    for (int spin = 0; spin < 2000 && idx.mergePending(); ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    worker.stop();

    EXPECT_GT(worker.mergesDone(), 0u);
    EXPECT_EQ(worker.mergesCrashed(), 0u);
    EXPECT_FALSE(idx.mergePending());
    EXPECT_LT(idx.stats().segments, 8u);
    EXPECT_EQ(idx.stats().liveDocs, 40u);
}

TEST(MergeWorkerTest, CrashedMergesAreHarmless)
{
    FaultPlan plan(0xabcdef);
    plan.defaultSpec().mergeCrashProb = 1.0; // every merge crashes

    LiveConfig cfg;
    cfg.mergeTriggerSegments = 2;
    LiveIndex idx(cfg);

    MergeWorker::Config mc;
    mc.periodNs = 100'000;
    mc.faults = &plan;
    MergeWorker worker(idx, mc);

    ingest(idx, 1, 3);
    const uint64_t v = ingest(idx, 10, 3);
    for (int spin = 0; spin < 200 && worker.mergesCrashed() == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    worker.stop();

    // Merges kept crashing: wasted work only. Nothing published, the
    // inputs and the served version are untouched.
    EXPECT_GT(worker.mergesCrashed(), 0u);
    EXPECT_EQ(worker.mergesDone(), 0u);
    EXPECT_EQ(idx.version(), v);
    EXPECT_EQ(idx.stats().segments, 2u);
    EXPECT_TRUE(idx.mergePending());
}

struct LiveClusterFixture
{
    static constexpr uint32_t kShards = 2;
    static constexpr uint32_t kReplicas = 2;

    explicit LiveClusterFixture(const FaultInjector *faults = nullptr)
    {
        for (uint32_t s = 0; s < kShards; ++s) {
            indexes.push_back(std::make_unique<LiveIndex>());
            // Disjoint doc spaces: shard s owns 1000*s + ...
            ingest(*indexes[s], 1000 * s + 1, 4);
        }
        ClusterConfig cc;
        cc.replicasPerShard = kReplicas;
        cc.pool.numWorkers = 2;
        cc.deadlineNs = 0; // wait for every shard
        cc.faults = faults;
        std::vector<LiveIndex *> ptrs;
        for (auto &ix : indexes)
            ptrs.push_back(ix.get());
        cluster = std::make_unique<ClusterServer>(ptrs, cc);
    }

    std::vector<std::unique_ptr<LiveIndex>> indexes;
    std::unique_ptr<ClusterServer> cluster;
};

TEST(LiveCluster, ServesFromConstructionSnapshots)
{
    LiveClusterFixture fx;
    const ClusterResult res = fx.cluster->handle(probe());
    EXPECT_EQ(res.page.shardsAnswered, 2u);
    EXPECT_EQ(docsOf(res.page.docs),
              (std::set<DocId>{1, 2, 3, 4, 1001, 1002, 1003, 1004}));
    ASSERT_EQ(res.page.shardVersions.size(), 2u);
    EXPECT_EQ(res.page.shardVersions[0], fx.indexes[0]->version());
    EXPECT_EQ(res.page.shardVersions[1], fx.indexes[1]->version());
    EXPECT_EQ(fx.cluster->liveIndex(0), fx.indexes[0].get());
    EXPECT_EQ(fx.cluster->liveIndex(1), fx.indexes[1].get());
}

TEST(LiveCluster, RollingRolloutReachesEveryReplica)
{
    LiveClusterFixture fx;
    // New acked writes are not served until rolled out.
    const uint64_t v2 = ingest(*fx.indexes[0], 101, 2);
    ClusterResult res = fx.cluster->handle(probe());
    EXPECT_EQ(docsOf(res.page.docs).count(101), 0u);

    const RolloutResult roll = fx.cluster->rolloutAll();
    EXPECT_EQ(roll.replicasUpdated,
              LiveClusterFixture::kShards *
                  LiveClusterFixture::kReplicas);
    EXPECT_EQ(roll.handoffsRejected, 0u);
    EXPECT_EQ(roll.version, v2);

    res = fx.cluster->handle(probe());
    EXPECT_EQ(docsOf(res.page.docs).count(101), 1u);
    ASSERT_EQ(res.page.shardVersions.size(), 2u);
    EXPECT_EQ(res.page.shardVersions[0], v2);

    // Both replicas of each shard serve the same version, and the
    // rollout is visible in the per-shard stats.
    const ClusterSnapshot snap = fx.cluster->snapshot();
    for (uint32_t s = 0; s < 2; ++s) {
        EXPECT_EQ(snap.shards[s].rollouts, 1u);
        EXPECT_EQ(snap.shards[s].replicasDraining, 0u);
        EXPECT_EQ(snap.shards[s].pool.indexVersionLow,
                  snap.shards[s].pool.indexVersionHigh);
        EXPECT_EQ(snap.shards[s].pool.snapshotsAdopted,
                  LiveClusterFixture::kReplicas);
        EXPECT_TRUE(snap.shards[s].pool.consistent());
    }

    // Re-rolling the same version is idempotent.
    const RolloutResult again = fx.cluster->rolloutAll();
    EXPECT_EQ(again.replicasUpdated, 4u);
    EXPECT_EQ(fx.cluster->snapshot().shards[0].rollouts, 2u);
}

TEST(LiveCluster, CorruptedHandoffIsRejectedAndResent)
{
    FaultPlan plan(0xfeed);
    // Every delivery to shard 0 / replica 0 arrives torn.
    plan.replicaSpec(0, 0).handoffCorruptProb = 1.0;

    LiveClusterFixture fx(&plan);
    const uint64_t v2 = ingest(*fx.indexes[0], 101, 2);
    const RolloutResult roll =
        fx.cluster->rolloutShard(0, fx.indexes[0]->snapshot());

    // The torn copy was refused (counted), the pristine resend landed:
    // every replica still converges on the new version.
    EXPECT_EQ(roll.handoffsRejected, 1u);
    EXPECT_EQ(roll.replicasUpdated, 2u);
    EXPECT_EQ(roll.version, v2);
    const ClusterSnapshot snap = fx.cluster->snapshot();
    EXPECT_EQ(snap.shards[0].pool.handoffsRejected, 1u);
    EXPECT_EQ(snap.shards[0].pool.indexVersionLow, v2);
    EXPECT_EQ(snap.shards[0].pool.indexVersionHigh, v2);

    const ClusterResult res = fx.cluster->handle(probe());
    EXPECT_EQ(docsOf(res.page.docs).count(101), 1u);
}

TEST(LiveCluster, QueriesKeepAnsweringDuringRollouts)
{
    LiveClusterFixture fx;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> served{0};

    // Client threads hammer the cluster while rollouts cycle through
    // the replicas; with R == 2 one replica always serves, so no
    // query may come back empty or torn.
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                const ClusterResult res = fx.cluster->handle(probe());
                EXPECT_EQ(res.page.shardsAnswered, 2u);
                EXPECT_GE(res.page.docs.size(), 8u);
                ++served;
            }
        });
    }
    for (int round = 0; round < 10; ++round) {
        ingest(*fx.indexes[round % 2], 2000 + 10 * round, 1);
        fx.cluster->rolloutAll();
    }
    while (served.load() < 50)
        std::this_thread::yield();
    stop.store(true, std::memory_order_release);
    for (std::thread &t : clients)
        t.join();

    const ClusterSnapshot snap = fx.cluster->snapshot();
    EXPECT_EQ(snap.shardMisses, 0u);
    for (const ShardSnapshot &ss : snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
}

TEST(LiveCluster, FrozenClusterHasNoLiveSide)
{
    CorpusConfig cc;
    cc.numDocs = 200;
    cc.vocabSize = 500;
    cc.avgDocLen = 20;
    CorpusGenerator corpus(cc);
    MaterializedIndex index(corpus);
    ClusterConfig cfg;
    cfg.replicasPerShard = 1;
    cfg.deadlineNs = 0;
    ClusterServer cluster({&index}, cfg);

    EXPECT_EQ(cluster.liveIndex(0), nullptr);
    SearchRequest req;
    req.query.id = 9;
    req.query.terms = {1, 2};
    req.query.conjunctive = false;
    req.query.topK = 10;
    const ClusterResult res = cluster.handle(req);
    // Frozen pages carry no version vector (nothing is versioned).
    EXPECT_TRUE(res.page.shardVersions.empty());
}

} // namespace
} // namespace wsearch
