/**
 * Concurrency tests for the serving trees' stats and cache tier.
 * These run under the "serve" ctest label so the TSan configuration
 * (WSEARCH_SANITIZE=thread) exercises them: the original Stats struct
 * did unsynchronized increments from concurrent handle() callers,
 * which these tests are built to catch regressing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "search/corpus.hh"
#include "search/root.hh"
#include "search/sharding.hh"

namespace wsearch {
namespace {

SearchRequest
asRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

constexpr uint32_t kThreads = 4;
constexpr uint32_t kQueriesPerThread = 200;
constexpr uint32_t kLeaves = 3;

struct TreeFixture
{
    TreeFixture()
    {
        CorpusConfig cc;
        cc.numDocs = 600;
        cc.vocabSize = 1500;
        cc.avgDocLen = 40;
        CorpusGenerator corpus(cc);
        sharded = buildShardedIndex(corpus, kLeaves);
        for (uint32_t s = 0; s < kLeaves; ++s) {
            LeafServer::Config lc = sharded.leafConfig(s);
            lc.numThreads = kThreads;
            leaves.push_back(std::make_unique<LeafServer>(
                sharded.shard(s), lc));
        }
        for (const auto &l : leaves)
            leafPtrs.push_back(l.get());
    }

    QueryGenerator::Config
    traffic() const
    {
        QueryGenerator::Config qc;
        qc.vocabSize = 1500;
        // Small distinct set: heavy repetition drives cache hits and
        // contention on the cache mutex.
        qc.distinctQueries = 64;
        qc.maxTerms = 3;
        return qc;
    }

    ShardedIndex sharded;
    std::vector<std::unique_ptr<LeafServer>> leaves;
    std::vector<LeafServer *> leafPtrs;
};

TEST(ServingTreeConcurrent, StatsConsistentUnderConcurrentHandles)
{
    TreeFixture fx;
    ServingTree tree(fx.leafPtrs, /*cache_capacity=*/32);

    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fx, &tree, t] {
            QueryGenerator gen(fx.traffic(), /*salt=*/t + 1);
            for (uint32_t i = 0; i < kQueriesPerThread; ++i) {
                const std::vector<ScoredDoc> r =
                    tree.handle(t, asRequest(gen.next())).docs;
                // Results stay sorted best-first even under load.
                for (size_t j = 1; j < r.size(); ++j)
                    EXPECT_FALSE(r[j - 1] < r[j]);
            }
        });
    }
    // Concurrent readers: snapshots must be tear-free under TSan.
    std::thread reader([&tree] {
        for (int i = 0; i < 100; ++i) {
            const ServingTree::Stats s = tree.stats();
            EXPECT_LE(s.cacheHits, s.queries);
            std::this_thread::yield();
        }
    });
    for (std::thread &t : threads)
        t.join();
    reader.join();

    const ServingTree::Stats s = tree.stats();
    EXPECT_EQ(s.queries, kThreads * kQueriesPerThread);
    EXPECT_LE(s.cacheHits, s.queries);
    // Every cache miss fans out to every leaf, exactly once.
    EXPECT_EQ(s.leafQueries, (s.queries - s.cacheHits) * kLeaves);
    uint64_t served = 0;
    for (const LeafServer *l : fx.leafPtrs)
        served += l->queriesServed();
    EXPECT_EQ(served, s.leafQueries);
}

TEST(ServingTreeConcurrent, CachedAndUncachedResultsAgree)
{
    TreeFixture fx;
    ServingTree cached(fx.leafPtrs, /*cache_capacity=*/128);
    ServingTree uncached(fx.leafPtrs, /*cache_capacity=*/0);

    QueryGenerator gen(fx.traffic());
    for (uint32_t i = 0; i < 100; ++i) {
        const Query q = gen.next();
        const auto a = cached.handle(0, asRequest(q)).docs;
        const auto b = uncached.handle(0, asRequest(q)).docs;
        ASSERT_EQ(a.size(), b.size()) << "query " << i;
        for (size_t j = 0; j < a.size(); ++j) {
            EXPECT_EQ(a[j].doc, b[j].doc);
            EXPECT_FLOAT_EQ(a[j].score, b[j].score);
        }
    }
    EXPECT_GT(cached.stats().cacheHits, 0u);
    EXPECT_EQ(uncached.stats().cacheHits, 0u);
}

TEST(MultiLevelTreeConcurrent, StatsConsistentUnderConcurrentHandles)
{
    TreeFixture fx;
    MultiLevelTree tree(fx.leafPtrs, /*fanout=*/2,
                        /*cache_capacity=*/32);

    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fx, &tree, t] {
            QueryGenerator gen(fx.traffic(), /*salt=*/100 + t);
            for (uint32_t i = 0; i < kQueriesPerThread; ++i)
                tree.handle(t, asRequest(gen.next()));
        });
    }
    for (std::thread &t : threads)
        t.join();

    const MultiLevelTree::Stats s = tree.stats();
    EXPECT_EQ(s.queries, kThreads * kQueriesPerThread);
    EXPECT_LE(s.cacheHits, s.queries);
    EXPECT_EQ(s.leafQueries, (s.queries - s.cacheHits) * kLeaves);
    EXPECT_EQ(s.parentMerges,
              (s.queries - s.cacheHits) * tree.numParents());
}

} // namespace
} // namespace wsearch
