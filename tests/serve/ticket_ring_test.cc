/**
 * Stress suite for the Vyukov ticket ring behind BoundedQueue (the
 * contract tests live in bounded_queue_test.cc; this file hammers the
 * lock-free fast paths and the close/drain interleavings). Carries
 * the "serve" ctest label, so CI's TSan leg runs every test here with
 * full race detection over the ring protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/ticket_ring.hh"

namespace wsearch {
namespace {

/** Per-producer FIFO must survive producer contention: with one
 *  consumer observing the stream sequentially, every producer's items
 *  must arrive in strictly increasing order, none lost, none
 *  duplicated. (Cross-consumer delivery totals are covered by the
 *  MPMC tests below and in bounded_queue_test.cc.) */
TEST(TicketRing, PerProducerOrderPreservedUnderContention)
{
    constexpr int kProducers = 4;
    constexpr uint64_t kPerProducer = 5000;
    TicketRing<uint64_t> q(32);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (uint64_t i = 1; i <= kPerProducer; ++i) {
                uint64_t v =
                    (static_cast<uint64_t>(p) << 32) | i;
                ASSERT_TRUE(q.push(std::move(v)));
            }
        });
    }
    uint64_t popped = 0;
    uint64_t last_seq[kProducers] = {};
    std::thread consumer([&] {
        uint64_t out;
        while (q.pop(out)) {
            const int p = static_cast<int>(out >> 32);
            const uint64_t seq = out & 0xffffffffu;
            EXPECT_GT(seq, last_seq[p]);
            last_seq[p] = seq;
            ++popped;
        }
    });
    for (auto &t : producers)
        t.join();
    q.close();
    consumer.join();

    EXPECT_EQ(popped, kProducers * kPerProducer);
    for (int p = 0; p < kProducers; ++p)
        EXPECT_EQ(last_seq[p], kPerProducer);
    EXPECT_EQ(q.depth(), 0u);
}

/** Capacity 1 is the degenerate ring (2 internal slots, gate at 1):
 *  the ring must never hold 2 items, under real concurrency. */
TEST(TicketRing, CapacityOneNeverOverfills)
{
    TicketRing<int> q(1);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> pushed{0}, popped{0};
    std::atomic<int> depth_violations{0};

    std::thread producer([&] {
        while (!stop.load()) {
            int v = 7;
            if (q.tryPush(std::move(v)))
                pushed.fetch_add(1);
            if (q.depth() > 1)
                depth_violations.fetch_add(1);
        }
    });
    std::thread consumer([&] {
        int out;
        while (q.pop(out)) {
            EXPECT_EQ(out, 7);
            popped.fetch_add(1);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    producer.join();
    q.close();
    consumer.join();

    EXPECT_EQ(pushed.load(), popped.load());
    EXPECT_EQ(depth_violations.load(), 0);
    EXPECT_EQ(q.depth(), 0u);
}

/**
 * The close-drain guarantee under racing producers: every push that
 * REPORTED success is delivered to a consumer, even when close()
 * lands mid-push -- a claimed-but-unpublished slot must be waited
 * out, not declared empty.
 */
TEST(TicketRing, CloseRaceLosesNoAcceptedItems)
{
    for (int round = 0; round < 50; ++round) {
        constexpr int kProducers = 4;
        constexpr int kConsumers = 2;
        TicketRing<uint64_t> q(8);
        std::atomic<uint64_t> accepted_sum{0};
        std::atomic<uint64_t> popped_sum{0};
        std::atomic<bool> stop{false};

        std::vector<std::thread> threads;
        for (int p = 0; p < kProducers; ++p) {
            threads.emplace_back([&, p] {
                uint64_t i = 1;
                while (!stop.load()) {
                    uint64_t v =
                        (static_cast<uint64_t>(p) << 32) | i++;
                    if (q.tryPush(std::move(v)))
                        accepted_sum.fetch_add(v);
                }
            });
        }
        for (int c = 0; c < kConsumers; ++c) {
            threads.emplace_back([&] {
                uint64_t out;
                while (q.pop(out))
                    popped_sum.fetch_add(out);
            });
        }
        // Close in the middle of the producer storm.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        q.close();
        stop.store(true);
        for (auto &t : threads)
            t.join();

        EXPECT_EQ(popped_sum.load(), accepted_sum.load())
            << "round " << round;
        EXPECT_EQ(q.depth(), 0u);
    }
}

/** Drain interleaving: blocked pushers must either deliver or report
 *  refusal once close() lands -- never hang, never double-count. */
TEST(TicketRing, CloseWithBlockedPushersAccountsExactly)
{
    for (int round = 0; round < 20; ++round) {
        TicketRing<int> q(2);
        // Fill to capacity so every push below blocks.
        ASSERT_TRUE(q.tryPush(1));
        ASSERT_TRUE(q.tryPush(2));

        constexpr int kBlocked = 4;
        std::atomic<int> delivered{0}, refused{0};
        std::vector<std::thread> pushers;
        for (int i = 0; i < kBlocked; ++i) {
            pushers.emplace_back([&] {
                int v = 100;
                if (q.push(std::move(v)))
                    delivered.fetch_add(1);
                else
                    refused.fetch_add(1);
            });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

        // One concurrent pop may free a slot for one blocked pusher;
        // close() refuses the rest.
        int out;
        ASSERT_TRUE(q.pop(out));
        q.close();
        for (auto &t : pushers)
            t.join();

        // Drain whatever was accepted.
        int drained = 0;
        while (q.pop(out))
            ++drained;

        EXPECT_EQ(delivered.load() + refused.load(), kBlocked);
        // 1 popped above + drained == 2 preloaded + delivered.
        EXPECT_EQ(1 + drained, 2 + delivered.load());
        EXPECT_EQ(q.depth(), 0u);
    }
}

/** Mixed blocking/non-blocking producers against consumers, with the
 *  totals reconciled: pushed == popped, nothing stranded. */
TEST(TicketRing, MixedPushModesReconcile)
{
    constexpr int kPairs = 3;
    constexpr uint64_t kPerProducer = 4000;
    TicketRing<uint64_t> q(16);
    std::atomic<uint64_t> pushed{0}, shed{0}, popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kPairs; ++p) {
        // Blocking producer: everything it submits is delivered.
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                uint64_t v = i;
                ASSERT_TRUE(q.push(std::move(v)));
                pushed.fetch_add(1);
            }
        });
        // Open-loop producer: shed when full, counted either way.
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                uint64_t v = i;
                if (q.tryPush(std::move(v)))
                    pushed.fetch_add(1);
                else
                    shed.fetch_add(1);
            }
        });
        threads.emplace_back([&] {
            uint64_t out;
            while (q.pop(out))
                popped.fetch_add(1);
        });
    }
    for (size_t t = 0; t < threads.size(); ++t)
        if (t % 3 != 2)
            threads[t].join();
    q.close();
    for (size_t t = 2; t < threads.size(); t += 3)
        threads[t].join();

    EXPECT_EQ(pushed.load() + shed.load(),
              2 * kPairs * kPerProducer);
    EXPECT_EQ(popped.load(), pushed.load());
    EXPECT_EQ(q.depth(), 0u);
}

} // namespace
} // namespace wsearch
