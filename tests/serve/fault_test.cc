/**
 * Fault-injection suite for the sharded serving stack, in two parts.
 *
 * 1. Named regression schedules: SimClock + FaultPlan force the rare
 *    interleavings that real-time tests only hit by luck -- a hedge
 *    winning while the primary hangs, the primary winning after the
 *    hedge already fired, both attempts expiring at the deadline,
 *    crashed shards failing fast, ejection + probation re-admission.
 *    These use zero sleeps: the only real-time waits are bounded
 *    handshakes (SimClock::awaitSleepers) and thread joins.
 *
 * 2. Chaos properties: seeded random FaultPlans x query streams under
 *    the real clock, asserting the invariants that must hold no
 *    matter what the plan does -- every query resolves exactly once
 *    with a valid (possibly degraded) page, coverage accounting
 *    balances, hedges are never double-counted, and every pool
 *    snapshot stays consistent. Seeds come from WSEARCH_CHAOS_SEED
 *    when set (CI echoes the seed for reproduction).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "search/corpus.hh"
#include "search/root.hh"
#include "search/sharding.hh"
#include "serve/cluster.hh"
#include "serve/clock.hh"
#include "serve/fault.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

constexpr uint64_t kMs = 1'000'000;

CorpusConfig
testCorpusConfig()
{
    CorpusConfig cc;
    cc.numDocs = 900;
    cc.vocabSize = 1500;
    cc.avgDocLen = 60;
    return cc;
}

Query
testQuery(uint64_t id)
{
    Query q;
    q.id = id;
    q.terms = {static_cast<TermId>(id % 16),
               static_cast<TermId>((id * 7 + 3) % 64)};
    q.conjunctive = false;
    q.topK = 10;
    return q;
}

SearchRequest
asRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

/**
 * Releases the SimClock before an earlier-declared ClusterServer is
 * destroyed. Declare AFTER the cluster: a failed ASSERT unwinds
 * through this first, unparking any worker stuck in a virtual sleep
 * so the cluster's shutdown/join cannot deadlock.
 */
struct SimClockReleaser
{
    explicit SimClockReleaser(SimClock &c) : clock(c) {}
    ~SimClockReleaser() { clock.release(); }
    SimClock &clock;
};

/** Result page is internally valid: sorted best-first, no duplicate
 *  doc ids, coverage fields within range. */
void
expectValidPage(const MergedPage &page, uint32_t shards_total)
{
    EXPECT_EQ(page.shardsTotal, shards_total);
    EXPECT_LE(page.shardsAnswered, page.shardsTotal);
    EXPECT_LE(page.shardsUnavailable,
              page.shardsTotal - page.shardsAnswered);
    std::set<DocId> seen;
    for (size_t i = 0; i < page.docs.size(); ++i) {
        EXPECT_TRUE(seen.insert(page.docs[i].doc).second)
            << "duplicate doc " << page.docs[i].doc;
        if (i > 0) {
            // Best-first: docs[i] must not outrank docs[i-1].
            EXPECT_FALSE(page.docs[i - 1] < page.docs[i])
                << "rank " << i;
        }
    }
}

// -----------------------------------------------------------------
// Named regression schedules (SimClock, zero sleeps)
// -----------------------------------------------------------------

TEST(FaultSchedule, HedgeWinsWhilePrimaryHangs)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    SimClock sim;
    FaultPlan plan;
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 100 * kMs;
    cc.hedgeDelayNs = 1 * kMs;
    cc.clock = &sim;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);
    SimClockReleaser releaser(sim);

    const Query q = testQuery(42);
    const uint32_t primary = cluster.plannedReplica(q.id, 0);
    const uint32_t backup = 1 - primary;
    FaultSpec &spec = plan.replicaSpec(0, primary);
    spec.hangProb = 1.0;
    spec.hangNs = 10'000 * kMs; // far past the deadline

    const uint64_t t0 = sim.now();
    ClusterResult res;
    std::thread caller([&] { res = cluster.handle(asRequest(q)); });

    // The primary's worker is now stuck in the injected hang.
    ASSERT_TRUE(sim.awaitSleepers(1));
    // Reach the hedge delay: the backup replica answers immediately.
    sim.advanceTo(t0 + cc.hedgeDelayNs);
    caller.join();

    EXPECT_EQ(res.page.shardsAnswered, 1u);
    EXPECT_FALSE(res.page.degraded());
    EXPECT_FALSE(res.page.docs.empty());
    EXPECT_EQ(res.hedges, 1u);

    // Unpark the hung primary: it must observe the winner's cancel
    // flag and drop without executing.
    sim.advanceTo(t0 + spec.hangNs + 1);
    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.hedgesIssued, 1u);
    EXPECT_EQ(snap.hedgeWins, 1u);
    EXPECT_EQ(cluster.replicaPool(0, primary).snapshot().cancelled, 1u);
    EXPECT_EQ(cluster.replicaPool(0, backup).snapshot().executed(), 1u);
    for (const ShardSnapshot &ss : snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
}

TEST(FaultSchedule, PrimaryWinsAfterHedgeFired)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    SimClock sim;
    FaultPlan plan;
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 100 * kMs;
    cc.hedgeDelayNs = 1 * kMs;
    cc.clock = &sim;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);
    SimClockReleaser releaser(sim);

    const Query q = testQuery(43);
    const uint32_t primary = cluster.plannedReplica(q.id, 0);
    const uint32_t backup = 1 - primary;
    // Primary is slow (5 ms) but beats the even-slower backup (50 ms):
    // the hedge fires at 1 ms yet loses the race.
    FaultSpec &pspec = plan.replicaSpec(0, primary);
    pspec.delayProb = 1.0;
    pspec.delayMinNs = pspec.delayMaxNs = 5 * kMs;
    FaultSpec &bspec = plan.replicaSpec(0, backup);
    bspec.delayProb = 1.0;
    bspec.delayMinNs = bspec.delayMaxNs = 50 * kMs;

    const uint64_t t0 = sim.now();
    ClusterResult res;
    std::thread caller([&] { res = cluster.handle(asRequest(q)); });

    ASSERT_TRUE(sim.awaitSleepers(1)); // primary in its delay
    sim.advanceTo(t0 + cc.hedgeDelayNs);
    ASSERT_TRUE(sim.awaitSleepers(2)); // hedge issued, also delayed
    sim.advanceTo(t0 + 5 * kMs);       // primary wakes first, wins
    caller.join();

    EXPECT_EQ(res.page.shardsAnswered, 1u);
    EXPECT_EQ(res.hedges, 1u);

    sim.advanceTo(t0 + 60 * kMs); // loser wakes, sees cancel
    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.hedgesIssued, 1u);
    EXPECT_EQ(snap.hedgeWins, 0u); // the primary's answer counted
    EXPECT_EQ(cluster.replicaPool(0, primary).snapshot().executed(),
              1u);
    EXPECT_EQ(cluster.replicaPool(0, backup).snapshot().cancelled, 1u);
    EXPECT_EQ(cluster.replicaPool(0, backup).snapshot().executed(), 0u);
    for (const ShardSnapshot &ss : snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
}

TEST(FaultSchedule, BothExpireAtDeadline)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    SimClock sim;
    FaultPlan plan;
    // Every replica hangs far past the deadline: the gather must give
    // up at the deadline with a valid empty page, and both parked
    // attempts must later resolve as expired -- not execute.
    plan.defaultSpec().hangProb = 1.0;
    plan.defaultSpec().hangNs = 500 * kMs;
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 20 * kMs;
    cc.hedgeDelayNs = 1 * kMs;
    cc.clock = &sim;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);
    SimClockReleaser releaser(sim);

    const uint64_t t0 = sim.now();
    ClusterResult res;
    std::thread caller(
        [&] { res = cluster.handle(asRequest(testQuery(44))); });

    ASSERT_TRUE(sim.awaitSleepers(1)); // primary hung
    sim.advanceTo(t0 + cc.hedgeDelayNs);
    ASSERT_TRUE(sim.awaitSleepers(2)); // hedge hung too
    sim.advanceTo(t0 + cc.deadlineNs + 1);
    caller.join();

    EXPECT_EQ(res.page.shardsAnswered, 0u);
    EXPECT_TRUE(res.page.docs.empty());
    EXPECT_TRUE(res.page.degraded());
    EXPECT_DOUBLE_EQ(res.page.coverage(), 0.0);
    // Silence is not proof of death: the shard is missed, not
    // unavailable.
    EXPECT_EQ(res.page.shardsUnavailable, 0u);
    EXPECT_EQ(res.hedges, 1u);

    sim.advanceTo(t0 + 600 * kMs);
    cluster.drainAll();
    uint64_t expired = 0, executed = 0;
    const ClusterSnapshot snap = cluster.snapshot();
    for (const ShardSnapshot &ss : snap.shards) {
        EXPECT_TRUE(ss.pool.consistent());
        expired += ss.pool.expired;
        executed += ss.pool.executed();
    }
    EXPECT_EQ(expired, 2u);
    EXPECT_EQ(executed, 0u);
}

TEST(FaultSchedule, CrashedShardFailsFastWithCoverageLoss)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 2);

    FaultPlan plan;
    // Shard 1 is fully down: both replicas refuse everything.
    plan.replicaSpec(1, 0).crashAtNs = 1;
    plan.replicaSpec(1, 1).crashAtNs = 1;
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 5'000 * kMs; // generous: fail-fast must not wait
    cc.maxRetriesPerShard = 1;
    cc.retryBackoffNs = 200'000;
    cc.probationNs = 10'000 * kMs;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);

    for (uint64_t i = 0; i < 5; ++i) {
        const ClusterResult res =
            cluster.handle(asRequest(testQuery(100 + i)));
        expectValidPage(res.page, 2);
        EXPECT_EQ(res.page.shardsAnswered, 1u) << "query " << i;
        EXPECT_EQ(res.page.shardsUnavailable, 1u) << "query " << i;
        EXPECT_TRUE(res.page.degraded());
        // Provably-dead shards must not burn the deadline.
        EXPECT_LT(res.latencyNs, 1'000 * kMs) << "query " << i;
    }
    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, 5u);
    EXPECT_EQ(snap.shardsUnavailable, 5u);
    EXPECT_EQ(snap.shards[1].unavailable, 5u);
    EXPECT_EQ(snap.shards[1].answered, 0u);
    EXPECT_EQ(snap.shards[0].answered, 5u);
    EXPECT_GT(snap.shards[1].failures, 0u);
    // After ejectAfterFailures consecutive refusals per replica, the
    // cluster stops even trying: both replicas sit ejected.
    EXPECT_EQ(snap.shards[1].replicasEjected, 2u);
    for (const ShardSnapshot &ss : snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
    EXPECT_GT(snap.shards[1].pool.refused, 0u);
    EXPECT_EQ(snap.shards[1].pool.executed(), 0u);
}

TEST(FaultSchedule, EjectionThenProbationReadmitsRecoveredReplica)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    SimClock sim;
    FaultPlan plan;
    ClusterConfig cc;
    cc.replicasPerShard = 1;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 1'000 * kMs;
    cc.maxRetriesPerShard = 0; // one failure settles the shard
    cc.ejectAfterFailures = 1;
    cc.probationNs = 5 * kMs;
    cc.clock = &sim;
    cc.faults = &plan;
    const uint64_t t0 = sim.now();
    // The only replica is crashed at start and recovers at t0+10ms.
    FaultSpec &spec = plan.replicaSpec(0, 0);
    spec.crashAtNs = 1;
    spec.recoverAtNs = t0 + 10 * kMs;
    ClusterServer cluster(si.shardPtrs(), cc);
    SimClockReleaser releaser(sim);

    // Query 1: refused at admission -> shard unavailable, replica
    // ejected for probationNs.
    const ClusterResult r1 =
        cluster.handle(asRequest(testQuery(201)));
    EXPECT_EQ(r1.page.shardsAnswered, 0u);
    EXPECT_EQ(r1.page.shardsUnavailable, 1u);
    EXPECT_EQ(cluster.replicaPool(0, 0).snapshot().refused, 1u);

    // Query 2 while ejected: fails fast WITHOUT contacting the
    // replica (no new submit reaches the pool).
    const ClusterResult r2 =
        cluster.handle(asRequest(testQuery(202)));
    EXPECT_EQ(r2.page.shardsUnavailable, 1u);
    EXPECT_EQ(cluster.replicaPool(0, 0).snapshot().submitted, 1u);
    EXPECT_EQ(cluster.snapshot().shards[0].replicasEjected, 1u);

    // Past both the probation window and the crash recovery: the next
    // query is the probe, and it succeeds.
    sim.advanceTo(t0 + 20 * kMs);
    const ClusterResult r3 =
        cluster.handle(asRequest(testQuery(203)));
    EXPECT_EQ(r3.page.shardsAnswered, 1u);
    EXPECT_FALSE(r3.page.degraded());

    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.shardsUnavailable, 2u);
    EXPECT_EQ(snap.shards[0].unavailable, 2u);
    EXPECT_EQ(snap.shards[0].answered, 1u);
    EXPECT_EQ(snap.shards[0].replicasEjected, 0u); // probe re-admitted
    EXPECT_TRUE(snap.shards[0].pool.consistent());
}

TEST(FaultSchedule, DroppedCompletionDegradesWithoutWedging)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    SimClock sim;
    FaultPlan plan;
    plan.defaultSpec().dropProb = 1.0; // every completion is lost
    ClusterConfig cc;
    cc.replicasPerShard = 1;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 10 * kMs;
    cc.clock = &sim;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);
    SimClockReleaser releaser(sim);

    const uint64_t t0 = sim.now();
    ClusterResult res;
    std::thread caller(
        [&] { res = cluster.handle(asRequest(testQuery(301))); });

    // The worker executes and silently drops the reply; drain() must
    // still complete -- lost completions never wedge the pool.
    while (cluster.replicaPool(0, 0).snapshot().submitted == 0)
        std::this_thread::yield();
    cluster.drainAll();
    const ServeSnapshot pool = cluster.replicaPool(0, 0).snapshot();
    EXPECT_EQ(pool.faultDropped, 1u);
    EXPECT_EQ(pool.completed, 1u);
    EXPECT_TRUE(pool.consistent());

    // The gather hears nothing and must give up at the deadline.
    sim.advanceTo(t0 + cc.deadlineNs + 1);
    caller.join();
    EXPECT_EQ(res.page.shardsAnswered, 0u);
    EXPECT_TRUE(res.page.degraded());
    // Silence is indistinguishable from slowness: missed, not dead.
    EXPECT_EQ(res.page.shardsUnavailable, 0u);
}

TEST(FaultSchedule, CorruptedReplyTruncatesButStaysValid)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    FaultPlan plan;
    plan.defaultSpec().corruptProb = 1.0;
    ClusterConfig cc;
    cc.replicasPerShard = 1;
    cc.pool.numWorkers = 1;
    cc.pool.cacheCapacity = 8;
    cc.deadlineNs = 0; // wait for the shard
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);

    const Query q = testQuery(401);
    // Reference: the same shard served without faults.
    LeafServer reference(si.shard(0), si.leafConfig(0));
    const std::vector<ScoredDoc> full =
        reference.serve(0, asRequest(q)).docs;
    ASSERT_GE(full.size(), 2u);
    std::set<DocId> full_docs;
    for (const ScoredDoc &sd : full)
        full_docs.insert(sd.doc);

    for (int rep = 0; rep < 2; ++rep) {
        const ClusterResult res = cluster.handle(asRequest(q));
        expectValidPage(res.page, 1);
        // The root cannot detect the truncation (coverage says the
        // shard answered); the page is smaller but well-formed, and
        // every doc in it is a genuine result.
        EXPECT_EQ(res.page.shardsAnswered, 1u);
        EXPECT_LT(res.page.docs.size(), full.size());
        for (const ScoredDoc &sd : res.page.docs)
            EXPECT_TRUE(full_docs.count(sd.doc)) << "doc " << sd.doc;
    }
    cluster.drainAll();
    const ServeSnapshot pool = cluster.replicaPool(0, 0).snapshot();
    EXPECT_EQ(pool.faultCorrupted, 2u);
    // Corrupted pages must never be cached: the second identical
    // query re-executed instead of hitting the cache tier.
    EXPECT_EQ(pool.cacheHits, 0u);
    EXPECT_TRUE(pool.consistent());
}

TEST(FaultSchedule, RetryRecoversFromTransientFailure)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 1);

    FaultPlan plan;
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 5'000 * kMs;
    cc.maxRetriesPerShard = 1;
    cc.retryBackoffNs = 100'000;
    cc.faults = &plan;
    ClusterServer cluster(si.shardPtrs(), cc);

    const Query q = testQuery(501);
    // Only the primary fails; the retry must land on the other
    // replica and answer.
    const uint32_t primary = cluster.plannedReplica(q.id, 0);
    plan.replicaSpec(0, primary).failProb = 1.0;

    const ClusterResult res = cluster.handle(asRequest(q));
    EXPECT_EQ(res.page.shardsAnswered, 1u);
    EXPECT_FALSE(res.page.degraded());
    EXPECT_EQ(res.retries, 1u);
    EXPECT_FALSE(res.page.docs.empty());

    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.retriesIssued, 1u);
    EXPECT_EQ(snap.shardsUnavailable, 0u);
    EXPECT_EQ(
        cluster.replicaPool(0, primary).snapshot().faultFailed, 1u);
    EXPECT_EQ(
        cluster.replicaPool(0, 1 - primary).snapshot().executed(), 1u);
    for (const ShardSnapshot &ss : snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
}

// -----------------------------------------------------------------
// Worker-pool edge: deadline exactly at pop
// -----------------------------------------------------------------

TEST(FaultSchedule, DeadlineExactlyAtPopStillExecutes)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const MaterializedIndex index(corpus);

    SimClock sim;
    LeafWorkerPool::Config pc;
    pc.numWorkers = 1;
    pc.clock = &sim;
    LeafWorkerPool pool(index, pc);
    SimClockReleaser releaser(sim);

    // Expiry is strict (start > deadline): a deadline equal to the
    // pop time still executes in full...
    struct Outcome
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        ServeOutcome outcome = ServeOutcome::Ok;
        size_t docs = 0;
    };
    const auto submit_and_wait = [&](uint64_t deadline_ns,
                                     uint64_t qid) {
        Outcome out;
        SearchRequest req;
        req.query = testQuery(qid);
        req.deadlineNs = deadline_ns;
        pool.submitAsync(
            req, /*block=*/true,
            [&out](std::vector<ScoredDoc> &&docs, ServeOutcome oc,
                   uint64_t /*index_version*/) {
                std::lock_guard<std::mutex> lk(out.mu);
                out.done = true;
                out.outcome = oc;
                out.docs = docs.size();
                out.cv.notify_all();
            });
        std::unique_lock<std::mutex> lk(out.mu);
        out.cv.wait(lk, [&] { return out.done; });
        return std::make_pair(out.outcome, out.docs);
    };

    const auto at = submit_and_wait(sim.now(), 601);
    EXPECT_EQ(at.first, ServeOutcome::Ok);
    EXPECT_GT(at.second, 0u);

    // ...while one nanosecond earlier is already expired at pop.
    const auto past = submit_and_wait(sim.now() - 1, 602);
    EXPECT_EQ(past.first, ServeOutcome::Expired);
    EXPECT_EQ(past.second, 0u);

    pool.drain();
    const ServeSnapshot snap = pool.snapshot();
    EXPECT_EQ(snap.executed(), 1u);
    EXPECT_EQ(snap.expired, 1u);
    EXPECT_TRUE(snap.consistent());
}

// -----------------------------------------------------------------
// Chaos properties (real clock, seeded random plans)
// -----------------------------------------------------------------

uint64_t
chaosBaseSeed()
{
    if (const char *s = std::getenv("WSEARCH_CHAOS_SEED"))
        return std::strtoull(s, nullptr, 0);
    return 0x5eedc4a05ull;
}

/** Randomize a FaultSpec from @p rng: mild pain, all fault types. */
FaultSpec
randomSpec(Rng &rng)
{
    FaultSpec s;
    s.delayProb = 0.10 * rng.nextDouble();
    s.delayMinNs = 50'000;
    s.delayMaxNs = 50'000 + rng.nextRange(1'000'000);
    s.hangProb = 0.02 * rng.nextDouble();
    s.hangNs = 40 * kMs; // > deadline, bounded for teardown
    s.failProb = 0.08 * rng.nextDouble();
    s.dropProb = 0.03 * rng.nextDouble();
    s.corruptProb = 0.05 * rng.nextDouble();
    if (rng.nextRange(8) == 0)
        s.crashAtNs = 1; // permanently dead replica
    return s;
}

void
runChaosRound(uint64_t seed, const ShardedIndex &si)
{
    SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex
                                      << seed);
    Rng rng(seed);
    const uint32_t num_shards = si.numShards();

    FaultPlan plan(seed);
    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1 + static_cast<uint32_t>(rng.nextRange(2));
    cc.pool.queueCapacity = 64;
    cc.deadlineNs = 8 * kMs;
    cc.hedgeDelayNs = 500'000;
    cc.maxHedgesPerQuery =
        1 + static_cast<uint32_t>(rng.nextRange(2));
    cc.maxRetriesPerShard = static_cast<uint32_t>(rng.nextRange(3));
    cc.retryBackoffNs = 100'000;
    cc.ejectAfterFailures =
        2 + static_cast<uint32_t>(rng.nextRange(3));
    cc.probationNs =
        static_cast<uint64_t>(1 + rng.nextRange(20)) * kMs;
    cc.faults = &plan;
    for (uint32_t s = 0; s < num_shards; ++s)
        for (uint32_t r = 0; r < cc.replicasPerShard; ++r)
            plan.replicaSpec(s, r) = randomSpec(rng);

    ClusterServer cluster(si.shardPtrs(), cc);

    constexpr uint32_t kClients = 3;
    constexpr uint32_t kQueriesPerClient = 30;
    std::vector<std::thread> clients;
    std::mutex res_mu;
    std::vector<ClusterResult> results;
    for (uint32_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (uint32_t i = 0; i < kQueriesPerClient; ++i) {
                const uint64_t qid =
                    seed ^ (c * 1000 + i); // distinct per client
                ClusterResult res =
                    cluster.handle(asRequest(testQuery(qid)));
                std::lock_guard<std::mutex> lk(res_mu);
                results.push_back(std::move(res));
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    cluster.drainAll();

    // Every submitted query resolved exactly once, with a valid page.
    ASSERT_EQ(results.size(), kClients * kQueriesPerClient);
    uint64_t hedges = 0, retries = 0;
    for (const ClusterResult &res : results) {
        expectValidPage(res.page, num_shards);
        hedges += res.hedges;
        retries += res.retries;
    }

    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, results.size());
    EXPECT_EQ(snap.queryNs.count(), snap.queries);
    // Coverage accounting balances: every (query, shard) pair is
    // answered or missed, never both, and unavailable is a subset of
    // missed.
    EXPECT_EQ(snap.shardAnswers + snap.shardMisses,
              snap.queries * num_shards);
    EXPECT_LE(snap.shardsUnavailable, snap.shardMisses);
    // No hedge double-count: wins are a subset of issues, and both
    // tallies agree between cluster and shards.
    EXPECT_LE(snap.hedgeWins, snap.hedgesIssued);
    EXPECT_EQ(snap.hedgesIssued, hedges);
    EXPECT_EQ(snap.retriesIssued, retries);
    uint64_t shard_hedges = 0, shard_answers = 0, shard_misses = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
        const ShardSnapshot &ss = snap.shards[s];
        EXPECT_TRUE(ss.pool.consistent())
            << "shard " << s << " pool counters";
        EXPECT_EQ(ss.answered + ss.missed, snap.queries)
            << "shard " << s;
        EXPECT_LE(ss.unavailable, ss.missed) << "shard " << s;
        EXPECT_EQ(ss.latencyNs.count(), ss.answered) << "shard " << s;
        shard_hedges += ss.hedges;
        shard_answers += ss.answered;
        shard_misses += ss.missed;
    }
    EXPECT_EQ(shard_hedges, snap.hedgesIssued);
    EXPECT_EQ(shard_answers, snap.shardAnswers);
    EXPECT_EQ(shard_misses, snap.shardMisses);
}

TEST(Chaos, SeededRandomPlansKeepInvariants)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 3);
    const uint64_t base = chaosBaseSeed();
    for (uint64_t round = 0; round < 3; ++round)
        runChaosRound(mix64(base + round), si);
}

} // namespace
} // namespace wsearch
