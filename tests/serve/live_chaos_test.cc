/**
 * Chaos suite for the live index under the serving stack. Seeded by
 * WSEARCH_CHAOS_SEED (CI pins several seeds and adds a fresh one per
 * run); every probabilistic decision comes from the FaultPlan's
 * stateless hashes, so a seed reproduces a failure exactly.
 *
 * The invariants enforced, per ISSUE 6's acceptance bar:
 *
 *  - exactly-once visibility: every acknowledged add/remove is
 *    visible in every snapshot whose version >= its commit (ack)
 *    version, and never before it -- checked both through the serving
 *    path (per-shard page versions against a committed model) and
 *    directly against every pinned historical snapshot;
 *  - no torn index versions: a query's per-shard answer version is
 *    always a version that was actually published and rolled out to
 *    that shard, even while rollouts, corrupted handoffs, and merge
 *    crashes race live traffic;
 *  - coverage accounting balances: answered/missed counts add up and
 *    every pool's ServeSnapshot stays consistent() throughout.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "search/live/live_index.hh"
#include "search/live/merge_worker.hh"
#include "search/live/snapshot_search.hh"
#include "serve/cluster.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

constexpr TermId kAllDocs = 7; ///< marker term carried by every doc

uint64_t
chaosBaseSeed()
{
    if (const char *s = std::getenv("WSEARCH_CHAOS_SEED"))
        return std::strtoull(s, nullptr, 0);
    return 0x5eedc4a05ull;
}

SearchRequest
probe(uint32_t topk = 4096)
{
    SearchRequest req;
    req.query.id = 42;
    req.query.terms = {kAllDocs};
    req.query.conjunctive = false;
    req.query.topK = topk;
    return req;
}

std::set<DocId>
docsOf(const std::vector<ScoredDoc> &docs)
{
    std::set<DocId> out;
    for (const ScoredDoc &d : docs)
        out.insert(d.doc);
    return out;
}

void
expectValidPage(const MergedPage &page, uint32_t shards_total)
{
    EXPECT_EQ(page.shardsTotal, shards_total);
    EXPECT_LE(page.shardsAnswered, page.shardsTotal);
    std::set<DocId> seen;
    for (size_t i = 0; i < page.docs.size(); ++i) {
        EXPECT_TRUE(seen.insert(page.docs[i].doc).second)
            << "duplicate doc " << page.docs[i].doc;
        if (i > 0)
            EXPECT_FALSE(page.docs[i - 1] < page.docs[i]);
    }
}

/** Doc ids of shard @p s live in [base, base + 100000). */
constexpr DocId
shardBase(uint32_t s)
{
    return 100'000u * s;
}

/**
 * Deterministic end-to-end chaos: serial rounds of ingest -> commit
 * -> (possibly crashed) merge -> rolling rollout with injected torn
 * handoffs, a full-visibility query after every round, and a final
 * sweep over every pinned snapshot proving exactly-once visibility at
 * every published version.
 */
void
runSeededLiveChaos(uint64_t seed)
{
    SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex
                                      << seed);
    constexpr uint32_t kShards = 2;
    constexpr uint32_t kReplicas = 2;
    constexpr int kRounds = 12;

    Rng rng(seed);
    FaultPlan plan(seed);
    for (uint32_t s = 0; s < kShards; ++s) {
        // crashMerge draws on replica 0's spec (shard-wide).
        plan.replicaSpec(s, 0).mergeCrashProb = 0.5;
        for (uint32_t r = 0; r < kReplicas; ++r)
            plan.replicaSpec(s, r).handoffCorruptProb = 0.35;
    }

    struct ShardModel
    {
        std::set<DocId> live; ///< acked docs right now
        /** Committed state at every published version. */
        std::map<uint64_t, std::set<DocId>> atVersion;
        /** Pinned (version, snapshot) pairs for the final sweep. */
        std::vector<std::pair<uint64_t,
                              std::shared_ptr<const IndexSnapshot>>>
            pinned;
        DocId next = 0;
        uint64_t mergeSeq = 0;
    };
    std::vector<std::unique_ptr<LiveIndex>> indexes;
    std::vector<ShardModel> model(kShards);

    LiveConfig lc;
    lc.mergeTriggerSegments = 2;
    for (uint32_t s = 0; s < kShards; ++s) {
        indexes.push_back(std::make_unique<LiveIndex>(lc));
        model[s].next = shardBase(s) + 1;
    }

    ClusterConfig cc;
    cc.replicasPerShard = kReplicas;
    cc.pool.numWorkers = 2;
    cc.deadlineNs = 0; // wait for every shard
    cc.faults = &plan;
    std::vector<LiveIndex *> ptrs;
    for (auto &ix : indexes)
        ptrs.push_back(ix.get());
    ClusterServer cluster(ptrs, cc);

    RolloutResult totals;
    uint64_t merges_completed = 0;
    uint64_t merges_crashed = 0;

    for (int round = 0; round < kRounds; ++round) {
        for (uint32_t s = 0; s < kShards; ++s) {
            LiveIndex &idx = *indexes[s];
            ShardModel &m = model[s];

            // A few adds; occasionally delete a random live doc.
            for (int i = 0; i < 3; ++i) {
                const DocId d = m.next++;
                idx.add(d, {kAllDocs,
                            static_cast<TermId>(100 + d % 5)});
                m.live.insert(d);
            }
            if (!m.live.empty() && rng.nextRange(3) == 0) {
                const DocId victim = *std::next(
                    m.live.begin(), rng.nextRange(m.live.size()));
                EXPECT_TRUE(idx.remove(victim));
                m.live.erase(victim);
            }

            const uint64_t v = idx.commit();
            m.atVersion[v] = m.live;
            m.pinned.emplace_back(v, idx.snapshot());

            // Merge until quiescent or crashed; a crashed merge must
            // leave version and visibility untouched.
            while (idx.mergePending()) {
                const bool crash =
                    plan.crashMerge(s, m.mergeSeq++, /*now_ns=*/0);
                const uint64_t v_before = idx.version();
                const bool merged =
                    idx.mergeOnce([crash] { return crash; });
                if (crash) {
                    EXPECT_FALSE(merged);
                    EXPECT_EQ(idx.version(), v_before);
                    ++merges_crashed;
                    break;
                }
                ASSERT_TRUE(merged);
                ++merges_completed;
                // A merge re-homes visibility, never changes it.
                m.atVersion[idx.version()] = m.live;
                m.pinned.emplace_back(idx.version(), idx.snapshot());
            }

            const RolloutResult rr =
                cluster.rolloutShard(s, idx.snapshot());
            EXPECT_EQ(rr.version, idx.version());
            EXPECT_EQ(rr.replicasUpdated, kReplicas);
            totals.merge(rr);
        }

        // Every round: full-coverage query; each shard's answer must
        // carry the exact version just rolled out and the exact acked
        // doc set at that version.
        const ClusterResult res = cluster.handle(probe());
        expectValidPage(res.page, kShards);
        ASSERT_EQ(res.page.shardsAnswered, kShards);
        ASSERT_EQ(res.page.shardVersions.size(), kShards);
        std::set<DocId> want;
        for (uint32_t s = 0; s < kShards; ++s) {
            EXPECT_EQ(res.page.shardVersions[s],
                      indexes[s]->version())
                << "shard " << s << " round " << round;
            want.insert(model[s].live.begin(), model[s].live.end());
        }
        EXPECT_EQ(docsOf(res.page.docs), want) << "round " << round;
    }

    // The chaos actually happened: merges crashed mid-build AND
    // completed, and at least one snapshot handoff arrived torn (and
    // was refused + resent).
    EXPECT_GE(merges_crashed, 1u);
    EXPECT_GE(merges_completed, 1u);
    EXPECT_GE(totals.handoffsRejected, 1u);

    // Coverage accounting balances and every pool stayed consistent.
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(snap.shardAnswers,
              static_cast<uint64_t>(kRounds) * kShards);
    EXPECT_EQ(snap.shardMisses, 0u);
    EXPECT_DOUBLE_EQ(snap.meanCoverage(), 1.0);
    uint64_t rejected = 0;
    for (uint32_t s = 0; s < kShards; ++s) {
        const ShardSnapshot &ss = snap.shards[s];
        EXPECT_TRUE(ss.pool.consistent()) << "shard " << s;
        EXPECT_EQ(ss.rollouts, static_cast<uint64_t>(kRounds));
        EXPECT_EQ(ss.replicasDraining, 0u);
        // One successful adoption per replica per rollout.
        EXPECT_EQ(ss.pool.snapshotsAdopted,
                  static_cast<uint64_t>(kRounds) * kReplicas);
        EXPECT_EQ(ss.pool.indexVersionLow, indexes[s]->version());
        EXPECT_EQ(ss.pool.indexVersionHigh, indexes[s]->version());
        rejected += ss.pool.handoffsRejected;
    }
    EXPECT_EQ(rejected, totals.handoffsRejected);

    // Exactly-once visibility, directly against history: every pinned
    // snapshot still validates and answers precisely the set of docs
    // acked at or before its version.
    SnapshotSearcher searcher(0);
    for (uint32_t s = 0; s < kShards; ++s) {
        for (const auto &pin : model[s].pinned) {
            ASSERT_TRUE(pin.second->validate());
            EXPECT_EQ(pin.second->version, pin.first);
            const SearchResponse r =
                searcher.search(*pin.second, probe());
            EXPECT_EQ(docsOf(r.docs), model[s].atVersion[pin.first])
                << "shard " << s << " version " << pin.first;
        }
    }
}

TEST(LiveChaos, SeededCrashMidMergeAndTornHandoffs)
{
    runSeededLiveChaos(chaosBaseSeed());
    runSeededLiveChaos(chaosBaseSeed() * 0x9e3779b97f4a7c15ull + 1);
}

/**
 * Concurrent chaos: per-shard writer threads ingest/commit/roll out
 * while background MergeWorkers compact (crashing per the plan),
 * handoffs arrive torn per the plan, and client threads hammer the
 * cluster. Clients check, per response and per shard, that the answer
 * version is one that was actually rolled out (never torn, never
 * invented) and that the doc set matches the committed model at
 * exactly that version.
 */
TEST(LiveChaos, ConcurrentIngestMergeQueryRollout)
{
    const uint64_t seed = chaosBaseSeed() ^ 0xc0cc0ull;
    SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex
                                      << seed);
    constexpr uint32_t kShards = 2;
    constexpr uint32_t kReplicas = 2;
    constexpr int kRounds = 12;

    FaultPlan plan(seed);
    for (uint32_t s = 0; s < kShards; ++s) {
        plan.replicaSpec(s, 0).mergeCrashProb = 0.3;
        for (uint32_t r = 0; r < kReplicas; ++r)
            plan.replicaSpec(s, r).handoffCorruptProb = 0.25;
    }

    struct ShardModel
    {
        std::mutex mu;
        std::set<DocId> live;
        std::map<uint64_t, std::set<DocId>> atVersion;
        std::set<uint64_t> rolledOut; ///< versions delivered to leaves
    };
    std::vector<std::unique_ptr<LiveIndex>> indexes;
    std::vector<std::unique_ptr<ShardModel>> model;

    LiveConfig lc;
    lc.mergeTriggerSegments = 2;
    for (uint32_t s = 0; s < kShards; ++s) {
        indexes.push_back(std::make_unique<LiveIndex>(lc));
        model.push_back(std::make_unique<ShardModel>());
        for (DocId d = shardBase(s) + 1; d <= shardBase(s) + 4; ++d) {
            indexes[s]->add(d, {kAllDocs});
            model[s]->live.insert(d);
        }
        const uint64_t v0 = indexes[s]->commit();
        model[s]->atVersion[v0] = model[s]->live;
        model[s]->rolledOut.insert(v0);
    }

    ClusterConfig cc;
    cc.replicasPerShard = kReplicas;
    cc.pool.numWorkers = 2;
    cc.deadlineNs = 0;
    cc.faults = &plan;
    std::vector<LiveIndex *> ptrs;
    for (auto &ix : indexes)
        ptrs.push_back(ix.get());
    ClusterServer cluster(ptrs, cc);

    std::vector<std::unique_ptr<MergeWorker>> workers;
    for (uint32_t s = 0; s < kShards; ++s) {
        MergeWorker::Config mc;
        mc.periodNs = 200'000; // 200 us
        mc.shardId = s;
        mc.faults = &plan;
        workers.push_back(
            std::make_unique<MergeWorker>(*indexes[s], mc));
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> queries{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                const ClusterResult res = cluster.handle(probe());
                expectValidPage(res.page, kShards);
                ASSERT_EQ(res.page.shardsAnswered, kShards);
                ASSERT_EQ(res.page.shardVersions.size(), kShards);
                for (uint32_t s = 0; s < kShards; ++s) {
                    const uint64_t v = res.page.shardVersions[s];
                    std::set<DocId> got;
                    for (const ScoredDoc &d : res.page.docs)
                        if (d.doc > shardBase(s) &&
                            d.doc <= shardBase(s) + 99'999)
                            got.insert(d.doc);
                    std::lock_guard<std::mutex> lk(model[s]->mu);
                    // No torn version: the answer came from a
                    // snapshot that was really rolled out.
                    EXPECT_TRUE(model[s]->rolledOut.count(v))
                        << "shard " << s << " version " << v;
                    // Exactly the docs acked at that version (merges
                    // in between never change the answer).
                    auto it = model[s]->atVersion.upper_bound(v);
                    ASSERT_NE(it, model[s]->atVersion.begin());
                    --it;
                    EXPECT_EQ(got, it->second)
                        << "shard " << s << " version " << v;
                }
                ++queries;
            }
        });
    }

    std::vector<std::thread> writers;
    for (uint32_t s = 0; s < kShards; ++s) {
        writers.emplace_back([&, s] {
            LiveIndex &idx = *indexes[s];
            ShardModel &m = *model[s];
            Rng wrng(seed ^ (0x133full + s));
            DocId next = shardBase(s) + 100;
            for (int round = 0; round < kRounds; ++round) {
                {
                    std::lock_guard<std::mutex> lk(m.mu);
                    for (int i = 0; i < 2; ++i) {
                        idx.add(next, {kAllDocs});
                        m.live.insert(next);
                        ++next;
                    }
                    if (wrng.nextRange(3) == 0) {
                        const DocId victim = *std::next(
                            m.live.begin(),
                            wrng.nextRange(m.live.size()));
                        EXPECT_TRUE(idx.remove(victim));
                        m.live.erase(victim);
                    }
                    const uint64_t v = idx.commit();
                    m.atVersion[v] = m.live;
                }
                // The rollout may deliver a later (merge-bumped)
                // version than the commit; record exactly what ships.
                const auto snap = idx.snapshot();
                {
                    std::lock_guard<std::mutex> lk(m.mu);
                    m.rolledOut.insert(snap->version);
                }
                cluster.rolloutShard(s, snap);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(500));
            }
        });
    }

    for (std::thread &t : writers)
        t.join();
    // Let the clients observe the final state a little longer.
    while (queries.load() < 30)
        std::this_thread::yield();
    stop.store(true, std::memory_order_release);
    for (std::thread &t : clients)
        t.join();
    for (auto &w : workers)
        w->stop();

    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.shardMisses, 0u);
    uint64_t rejected = 0;
    uint64_t adopted = 0;
    for (const ShardSnapshot &ss : snap.shards) {
        EXPECT_TRUE(ss.pool.consistent());
        EXPECT_EQ(ss.rollouts, static_cast<uint64_t>(kRounds));
        rejected += ss.pool.handoffsRejected;
        adopted += ss.pool.snapshotsAdopted;
    }
    // ~96 seeded corruption draws at p=0.25: statistically certain.
    EXPECT_GE(rejected, 1u);
    EXPECT_GE(adopted, static_cast<uint64_t>(kRounds) * kShards);
}

/**
 * A permanently crashed replica while merges run and rollouts cycle:
 * traffic fails over (retry/ejection machinery from PR 4), rollouts
 * still converge every replica -- including the dead one, whose
 * handoff path is control-plane, not query admission -- and no query
 * ever sees a torn version or a stale doc set.
 */
TEST(LiveChaos, ReplicaCrashDuringMergesAndRollouts)
{
    const uint64_t seed = chaosBaseSeed() ^ 0xdeadull;
    SCOPED_TRACE(::testing::Message() << "chaos seed 0x" << std::hex
                                      << seed);
    FaultPlan plan(seed);
    plan.replicaSpec(0, 0).crashAtNs = 1; // dead from the start
    plan.replicaSpec(0, 0).mergeCrashProb = 0.5;

    LiveConfig lc;
    lc.mergeTriggerSegments = 2;
    LiveIndex idx(lc);
    std::set<DocId> live;
    DocId next = 1;
    for (int i = 0; i < 4; ++i, ++next) {
        idx.add(next, {kAllDocs});
        live.insert(next);
    }
    idx.commit();

    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 2;
    cc.deadlineNs = 0;
    cc.maxRetriesPerShard = 2;
    cc.faults = &plan;
    ClusterServer cluster({&idx}, cc);

    uint64_t merge_seq = 0;
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 2; ++i, ++next) {
            idx.add(next, {kAllDocs});
            live.insert(next);
        }
        idx.commit();
        while (idx.mergePending()) {
            const bool crash = plan.crashMerge(0, merge_seq++, 0);
            if (!idx.mergeOnce([crash] { return crash; }))
                break;
        }
        const RolloutResult rr = cluster.rolloutShard(0, idx.snapshot());
        EXPECT_EQ(rr.replicasUpdated, 2u);

        // Per-query: valid full page at the just-rolled version, even
        // though every primary-pick of the dead replica must fail
        // over. Distinct query ids spread the replica hash so some
        // primaries do land on the dead replica.
        for (uint64_t qi = 0; qi < 3; ++qi) {
            SearchRequest req = probe();
            req.query.id = static_cast<uint64_t>(round) * 16 + qi;
            const ClusterResult res = cluster.handle(req);
            expectValidPage(res.page, 1);
            ASSERT_EQ(res.page.shardsAnswered, 1u);
            EXPECT_EQ(res.page.shardVersions[0], idx.version());
            EXPECT_EQ(docsOf(res.page.docs), live);
        }
    }

    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.shardMisses, 0u);
    EXPECT_TRUE(snap.shards[0].pool.consistent());
    // The dead replica refused whatever was aimed at it.
    EXPECT_GT(snap.shards[0].pool.refused, 0u);
    EXPECT_EQ(snap.shards[0].pool.indexVersionLow, idx.version());
    EXPECT_EQ(snap.shards[0].pool.indexVersionHigh, idx.version());
}

} // namespace
} // namespace wsearch
