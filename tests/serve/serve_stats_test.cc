/**
 * ServeSnapshot unit tests: merge() must accumulate every counter --
 * including the fault-injection and drop-reason counters added with
 * the deadline, hedging, and fault layers -- and executed() /
 * consistent() must agree with the documented accounting identities.
 * A merge that silently forgets a counter shows up here, not as a
 * subtly-wrong fleet report.
 */

#include <gtest/gtest.h>

#include "serve/serve_stats.hh"

namespace wsearch {
namespace {

/** A snapshot with every field distinct, so a dropped or swapped
 *  counter in merge() cannot cancel out. */
ServeSnapshot
sampleSnapshot(uint64_t base)
{
    ServeSnapshot s;
    s.shed = base + 1;
    s.cacheHits = base + 2;
    s.refused = base + 3;
    s.expired = base + 4;
    s.cancelled = base + 5;
    s.faultFailed = base + 6;
    s.faultDropped = base + 7;
    s.faultCorrupted = base + 8;
    s.cacheLookups = base + 9;
    s.cacheEvictions = base + 10;
    s.snapshotsAdopted = base + 16;
    s.handoffsRejected = base + 17;
    s.indexVersionLow = base + 18;
    s.indexVersionHigh = base + 19;
    // Keeps both consistency identities true for any base.
    s.completed = s.expired + s.cancelled + s.faultFailed + base + 20;
    s.accepted = s.completed;
    s.submitted = s.accepted + s.shed + s.cacheHits + s.refused;
    s.sojournNs.record(base + 11);
    s.serviceNs.record(base + 12);
    s.cacheHitNs.record(base + 13);
    s.workers.push_back({base + 14, base + 15});
    return s;
}

TEST(ServeSnapshot, MergeAccumulatesEveryCounter)
{
    ServeSnapshot a = sampleSnapshot(0);
    const ServeSnapshot a0 = a;
    const ServeSnapshot b = sampleSnapshot(1000);
    ASSERT_TRUE(a.consistent());
    ASSERT_TRUE(b.consistent());

    a.merge(b);
    EXPECT_EQ(a.submitted, a0.submitted + b.submitted);
    EXPECT_EQ(a.accepted, a0.accepted + b.accepted);
    EXPECT_EQ(a.completed, a0.completed + b.completed);
    EXPECT_EQ(a.shed, 1u + 1001u);
    EXPECT_EQ(a.cacheHits, 2u + 1002u);
    EXPECT_EQ(a.refused, 3u + 1003u);
    EXPECT_EQ(a.expired, 4u + 1004u);
    EXPECT_EQ(a.cancelled, 5u + 1005u);
    EXPECT_EQ(a.faultFailed, 6u + 1006u);
    EXPECT_EQ(a.faultDropped, 7u + 1007u);
    EXPECT_EQ(a.faultCorrupted, 8u + 1008u);
    EXPECT_EQ(a.cacheLookups, 9u + 1009u);
    EXPECT_EQ(a.cacheEvictions, 10u + 1010u);
    EXPECT_EQ(a.snapshotsAdopted, 16u + 1016u);
    EXPECT_EQ(a.handoffsRejected, 17u + 1017u);
    // Version range: min over non-zero lows, max over highs.
    EXPECT_EQ(a.indexVersionLow, 18u);
    EXPECT_EQ(a.indexVersionHigh, 1019u);
    EXPECT_EQ(a.sojournNs.count(), 2u);
    EXPECT_EQ(a.serviceNs.count(), 2u);
    EXPECT_EQ(a.cacheHitNs.count(), 2u);
    ASSERT_EQ(a.workers.size(), 2u);
    EXPECT_EQ(a.workers[0].served, 14u);
    EXPECT_EQ(a.workers[1].served, 1014u);
    EXPECT_EQ(a.workers[1].busyNs, 1015u);
    // The merge of two consistent snapshots is consistent: both
    // identities are linear in the counters.
    EXPECT_TRUE(a.consistent());
}

TEST(ServeSnapshot, ExecutedExcludesEveryDropReason)
{
    ServeSnapshot s;
    s.completed = 50;
    s.expired = 7;
    s.cancelled = 5;
    s.faultFailed = 3;
    // Dropped/corrupted requests *did* execute; they must not be
    // subtracted.
    s.faultDropped = 4;
    s.faultCorrupted = 2;
    EXPECT_EQ(s.executed(), 50u - 7u - 5u - 3u);
}

TEST(ServeSnapshot, ConsistencyCatchesBrokenAccounting)
{
    ServeSnapshot ok = sampleSnapshot(0);
    EXPECT_TRUE(ok.consistent());

    // A submit not accounted by any admission outcome.
    ServeSnapshot lost = sampleSnapshot(0);
    lost.submitted += 1;
    EXPECT_FALSE(lost.consistent());

    // More drops than completions.
    ServeSnapshot drops = sampleSnapshot(0);
    drops.expired = drops.completed + 1;
    drops.cancelled = 0;
    drops.faultFailed = 0;
    EXPECT_FALSE(drops.consistent());

    // More suppressed/corrupted replies than completions.
    ServeSnapshot faults = sampleSnapshot(0);
    faults.faultDropped = faults.completed + 1;
    faults.faultCorrupted = 0;
    EXPECT_FALSE(faults.consistent());

    // An inverted index-version range (a torn fleet view).
    ServeSnapshot torn = sampleSnapshot(0);
    torn.indexVersionLow = torn.indexVersionHigh + 1;
    EXPECT_FALSE(torn.consistent());
}

TEST(ServeSnapshot, VersionRangeIgnoresFrozenPools)
{
    // A frozen pool reports version 0; merging it into a live fleet
    // view must not drag the low end to zero.
    ServeSnapshot live;
    live.indexVersionLow = live.indexVersionHigh = 9;
    ServeSnapshot frozen; // all zeros
    live.merge(frozen);
    EXPECT_EQ(live.indexVersionLow, 9u);
    EXPECT_EQ(live.indexVersionHigh, 9u);

    // Merging in the other order converges to the same range.
    ServeSnapshot fleet;
    fleet.merge(frozen);
    ServeSnapshot other;
    other.indexVersionLow = other.indexVersionHigh = 4;
    fleet.merge(other);
    ServeSnapshot lagging;
    lagging.indexVersionLow = 3;
    lagging.indexVersionHigh = 11;
    fleet.merge(lagging);
    EXPECT_EQ(fleet.indexVersionLow, 3u);
    EXPECT_EQ(fleet.indexVersionHigh, 11u);
}

} // namespace
} // namespace wsearch
