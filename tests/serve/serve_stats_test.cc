/**
 * ServeSnapshot unit tests: merge() must accumulate every counter --
 * including the fault-injection and drop-reason counters added with
 * the deadline, hedging, and fault layers -- and executed() /
 * consistent() must agree with the documented accounting identities.
 * A merge that silently forgets a counter shows up here, not as a
 * subtly-wrong fleet report.
 *
 * Also covers the per-worker stats-slab aggregation: since the
 * contention-free rework, LeafWorkerPool::snapshot() SUMS counters
 * from per-worker slabs and per-thread submission slabs (submitted is
 * derived, not stored), so these tests pin that the aggregated view
 * still satisfies every identity -- after a drain and mid-flight.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "search/corpus.hh"
#include "search/index.hh"
#include "search/query.hh"
#include "serve/serve_stats.hh"
#include "serve/worker_pool.hh"

namespace wsearch {
namespace {

/** A snapshot with every field distinct, so a dropped or swapped
 *  counter in merge() cannot cancel out. */
ServeSnapshot
sampleSnapshot(uint64_t base)
{
    ServeSnapshot s;
    s.shed = base + 1;
    s.cacheHits = base + 2;
    s.refused = base + 3;
    s.expired = base + 4;
    s.cancelled = base + 5;
    s.faultFailed = base + 6;
    s.faultDropped = base + 7;
    s.faultCorrupted = base + 8;
    s.cacheLookups = base + 9;
    s.cacheEvictions = base + 10;
    s.snapshotsAdopted = base + 16;
    s.handoffsRejected = base + 17;
    s.indexVersionLow = base + 18;
    s.indexVersionHigh = base + 19;
    // Keeps both consistency identities true for any base.
    s.completed = s.expired + s.cancelled + s.faultFailed + base + 20;
    s.accepted = s.completed;
    s.submitted = s.accepted + s.shed + s.cacheHits + s.refused;
    s.sojournNs.record(base + 11);
    s.serviceNs.record(base + 12);
    s.cacheHitNs.record(base + 13);
    s.workers.push_back({base + 14, base + 15});
    return s;
}

TEST(ServeSnapshot, MergeAccumulatesEveryCounter)
{
    ServeSnapshot a = sampleSnapshot(0);
    const ServeSnapshot a0 = a;
    const ServeSnapshot b = sampleSnapshot(1000);
    ASSERT_TRUE(a.consistent());
    ASSERT_TRUE(b.consistent());

    a.merge(b);
    EXPECT_EQ(a.submitted, a0.submitted + b.submitted);
    EXPECT_EQ(a.accepted, a0.accepted + b.accepted);
    EXPECT_EQ(a.completed, a0.completed + b.completed);
    EXPECT_EQ(a.shed, 1u + 1001u);
    EXPECT_EQ(a.cacheHits, 2u + 1002u);
    EXPECT_EQ(a.refused, 3u + 1003u);
    EXPECT_EQ(a.expired, 4u + 1004u);
    EXPECT_EQ(a.cancelled, 5u + 1005u);
    EXPECT_EQ(a.faultFailed, 6u + 1006u);
    EXPECT_EQ(a.faultDropped, 7u + 1007u);
    EXPECT_EQ(a.faultCorrupted, 8u + 1008u);
    EXPECT_EQ(a.cacheLookups, 9u + 1009u);
    EXPECT_EQ(a.cacheEvictions, 10u + 1010u);
    EXPECT_EQ(a.snapshotsAdopted, 16u + 1016u);
    EXPECT_EQ(a.handoffsRejected, 17u + 1017u);
    // Version range: min over non-zero lows, max over highs.
    EXPECT_EQ(a.indexVersionLow, 18u);
    EXPECT_EQ(a.indexVersionHigh, 1019u);
    EXPECT_EQ(a.sojournNs.count(), 2u);
    EXPECT_EQ(a.serviceNs.count(), 2u);
    EXPECT_EQ(a.cacheHitNs.count(), 2u);
    ASSERT_EQ(a.workers.size(), 2u);
    EXPECT_EQ(a.workers[0].served, 14u);
    EXPECT_EQ(a.workers[1].served, 1014u);
    EXPECT_EQ(a.workers[1].busyNs, 1015u);
    // The merge of two consistent snapshots is consistent: both
    // identities are linear in the counters.
    EXPECT_TRUE(a.consistent());
}

TEST(ServeSnapshot, ExecutedExcludesEveryDropReason)
{
    ServeSnapshot s;
    s.completed = 50;
    s.expired = 7;
    s.cancelled = 5;
    s.faultFailed = 3;
    // Dropped/corrupted requests *did* execute; they must not be
    // subtracted.
    s.faultDropped = 4;
    s.faultCorrupted = 2;
    EXPECT_EQ(s.executed(), 50u - 7u - 5u - 3u);
}

TEST(ServeSnapshot, ConsistencyCatchesBrokenAccounting)
{
    ServeSnapshot ok = sampleSnapshot(0);
    EXPECT_TRUE(ok.consistent());

    // A submit not accounted by any admission outcome.
    ServeSnapshot lost = sampleSnapshot(0);
    lost.submitted += 1;
    EXPECT_FALSE(lost.consistent());

    // More drops than completions.
    ServeSnapshot drops = sampleSnapshot(0);
    drops.expired = drops.completed + 1;
    drops.cancelled = 0;
    drops.faultFailed = 0;
    EXPECT_FALSE(drops.consistent());

    // More suppressed/corrupted replies than completions.
    ServeSnapshot faults = sampleSnapshot(0);
    faults.faultDropped = faults.completed + 1;
    faults.faultCorrupted = 0;
    EXPECT_FALSE(faults.consistent());

    // An inverted index-version range (a torn fleet view).
    ServeSnapshot torn = sampleSnapshot(0);
    torn.indexVersionLow = torn.indexVersionHigh + 1;
    EXPECT_FALSE(torn.consistent());
}

TEST(ServeSnapshot, VersionRangeIgnoresFrozenPools)
{
    // A frozen pool reports version 0; merging it into a live fleet
    // view must not drag the low end to zero.
    ServeSnapshot live;
    live.indexVersionLow = live.indexVersionHigh = 9;
    ServeSnapshot frozen; // all zeros
    live.merge(frozen);
    EXPECT_EQ(live.indexVersionLow, 9u);
    EXPECT_EQ(live.indexVersionHigh, 9u);

    // Merging in the other order converges to the same range.
    ServeSnapshot fleet;
    fleet.merge(frozen);
    ServeSnapshot other;
    other.indexVersionLow = other.indexVersionHigh = 4;
    fleet.merge(other);
    ServeSnapshot lagging;
    lagging.indexVersionLow = 3;
    lagging.indexVersionHigh = 11;
    fleet.merge(lagging);
    EXPECT_EQ(fleet.indexVersionLow, 3u);
    EXPECT_EQ(fleet.indexVersionHigh, 11u);
}

/** Tiny shared shard for the slab-aggregation pool tests. */
const MaterializedIndex &
slabTestIndex()
{
    static const CorpusGenerator corpus([] {
        CorpusConfig cc;
        cc.numDocs = 500;
        cc.vocabSize = 500;
        cc.avgDocLen = 40;
        return cc;
    }());
    static const MaterializedIndex index(corpus);
    return index;
}

SearchRequest
slabRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

/**
 * Per-worker slab aggregation: executed work and drop reasons are
 * counted on each worker's own slab; the snapshot must sum them into
 * a view where every identity holds and the per-worker served
 * counters reconcile with executed().
 */
TEST(ServeSnapshot, PoolAggregatesPerWorkerSlabs)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 4;
    pc.queueCapacity = 64;
    LeafWorkerPool pool(slabTestIndex(), pc);

    QueryGenerator::Config qc;
    qc.vocabSize = 500;
    qc.distinctQueries = 256;
    QueryGenerator gen(qc);

    const uint32_t kServed = 300;
    const uint32_t kExpired = 50;
    for (uint32_t i = 0; i < kServed; ++i)
        ASSERT_EQ(pool.submit(slabRequest(gen.next()),
                              /*block=*/true),
                  LeafWorkerPool::Admit::Accepted);
    for (uint32_t i = 0; i < kExpired; ++i) {
        // A deadline in the distant past: the popping worker must
        // drop it as Expired, counted on ITS slab.
        SearchRequest req = slabRequest(gen.next());
        req.deadlineNs = 1;
        ASSERT_EQ(pool.submit(req, /*block=*/true),
                  LeafWorkerPool::Admit::Accepted);
    }
    pool.drain();

    const ServeSnapshot s = pool.snapshot();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.submitted, kServed + kExpired);
    EXPECT_EQ(s.accepted, kServed + kExpired);
    EXPECT_EQ(s.completed, kServed + kExpired);
    EXPECT_EQ(s.expired, kExpired);
    EXPECT_EQ(s.executed(), kServed);
    // The per-worker served counters (one slab each) must reconcile
    // with the aggregated executed count, and with 4 workers on a
    // 64-deep queue the work cannot all land on one slab.
    uint64_t served = 0;
    for (const WorkerCounters &w : s.workers)
        served += w.served;
    EXPECT_EQ(s.workers.size(), 4u);
    EXPECT_EQ(served, kServed);
    EXPECT_EQ(s.sojournNs.count(), kServed);
    EXPECT_EQ(s.serviceNs.count(), kServed);
}

/**
 * The admission identity (submitted == accepted + shed + cacheHits +
 * refused) must hold at ANY instant, not just after a drain: the
 * snapshot derives submitted from the summed slabs, so a mid-flight
 * reader can never catch the counters out of step.
 */
TEST(ServeSnapshot, AdmissionIdentityHoldsMidFlight)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    pc.queueCapacity = 8; // small: force sheds under pressure
    pc.cacheCapacity = 128;
    LeafWorkerPool pool(slabTestIndex(), pc);

    QueryGenerator::Config qc;
    qc.vocabSize = 500;
    qc.distinctQueries = 64; // repeats: cache hits mid-run
    QueryGenerator gen(qc);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> violations{0};
    std::thread observer([&] {
        while (!stop.load()) {
            const ServeSnapshot s = pool.snapshot();
            if (s.submitted !=
                s.accepted + s.shed + s.cacheHits + s.refused)
                violations.fetch_add(1);
            if (s.indexVersionLow > s.indexVersionHigh)
                violations.fetch_add(1);
        }
    });

    const uint32_t kQueries = 4000;
    for (uint32_t i = 0; i < kQueries; ++i)
        pool.submit(slabRequest(gen.next()), /*block=*/false);
    pool.drain();
    stop.store(true);
    observer.join();

    EXPECT_EQ(violations.load(), 0u);
    const ServeSnapshot s = pool.snapshot();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.submitted, kQueries);
    EXPECT_EQ(s.accepted + s.shed + s.cacheHits, kQueries);
    EXPECT_EQ(s.completed, s.accepted);
    // One latency sample per cache hit, summed over segments.
    EXPECT_EQ(s.cacheHitNs.count(), s.cacheHits);
}

} // namespace
} // namespace wsearch
