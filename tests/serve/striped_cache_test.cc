/**
 * Striped query-cache tier: equivalence against the single-segment
 * QueryCacheServer reference, zero-capacity shed-to-miss consistency
 * across segments, and concurrent hit/evict accounting (the "serve"
 * label puts the concurrency tests under CI's TSan leg).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "search/cache_server.hh"
#include "serve/striped_cache.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

std::vector<ScoredDoc>
resultFor(uint64_t id)
{
    return {ScoredDoc{static_cast<uint32_t>(id),
                      static_cast<float>(id)}};
}

/** A deterministic skewed query-id trace (repeats drive hits). */
std::vector<uint64_t>
zipfTrace(size_t n, uint64_t universe, uint64_t seed)
{
    std::vector<uint64_t> trace;
    trace.reserve(n);
    Rng rng(seed);
    ZipfSampler zipf(universe, 0.9);
    for (size_t i = 0; i < n; ++i)
        trace.push_back(zipf.sample(rng));
    return trace;
}

/** One stripe must behave bit-identically to the bare
 *  QueryCacheServer on the same trace: same hits, same evictions,
 *  same resident set, query by query. */
TEST(StripedQueryCache, SingleStripeMatchesReferenceExactly)
{
    StripedQueryCache striped(64, 1);
    QueryCacheServer reference(64);

    const std::vector<uint64_t> trace = zipfTrace(20000, 4096, 42);
    for (const uint64_t id : trace) {
        std::vector<ScoredDoc> got;
        const bool hit = striped.lookup(id, &got);
        std::vector<ScoredDoc> want;
        const bool ref_hit = reference.lookup(id, &want);
        ASSERT_EQ(hit, ref_hit) << "query " << id;
        if (hit) {
            ASSERT_EQ(got.size(), want.size());
            ASSERT_EQ(got[0].doc, want[0].doc);
        } else {
            striped.insert(id, resultFor(id));
            reference.insert(id, resultFor(id));
        }
    }
    const StripedQueryCache::Totals t = striped.totals();
    EXPECT_EQ(t.lookups, reference.lookups());
    EXPECT_EQ(t.hits, reference.hits());
    EXPECT_EQ(t.evictions, reference.evictions());
    EXPECT_EQ(t.size, reference.size());
}

/**
 * The sharded tier must be equivalent to N independent per-hash-class
 * reference caches of the same per-segment capacities: hashing
 * partitions the key space, so each segment IS a QueryCacheServer
 * over its hash class. Totals (hits/evictions/size) must match the
 * reference partition sum on the same trace.
 */
TEST(StripedQueryCache, ShardedTotalsMatchPartitionedReference)
{
    constexpr size_t kStripes = 8;
    constexpr size_t kCapacity = 100; // 100/8: segments get 13 or 12
    StripedQueryCache striped(kCapacity, kStripes);

    std::vector<QueryCacheServer> reference;
    for (size_t i = 0; i < kStripes; ++i)
        reference.emplace_back(striped.stripeCapacity(i));

    const std::vector<uint64_t> trace = zipfTrace(30000, 2048, 7);
    for (const uint64_t id : trace) {
        const size_t s =
            StripedQueryCache::stripeFor(id, kStripes);
        const bool hit = striped.lookup(id, nullptr);
        const bool ref_hit = reference[s].lookup(id, nullptr);
        ASSERT_EQ(hit, ref_hit) << "query " << id;
        if (!hit) {
            striped.insert(id, resultFor(id));
            reference[s].insert(id, resultFor(id));
        }
    }

    uint64_t ref_lookups = 0, ref_hits = 0, ref_evictions = 0,
             ref_size = 0;
    for (size_t i = 0; i < kStripes; ++i) {
        ref_lookups += reference[i].lookups();
        ref_hits += reference[i].hits();
        ref_evictions += reference[i].evictions();
        ref_size += reference[i].size();
        // Per-segment counters must match, not just the totals.
        const StripedQueryCache::Totals st = striped.stripeTotals(i);
        EXPECT_EQ(st.lookups, reference[i].lookups()) << i;
        EXPECT_EQ(st.hits, reference[i].hits()) << i;
        EXPECT_EQ(st.evictions, reference[i].evictions()) << i;
    }
    const StripedQueryCache::Totals t = striped.totals();
    EXPECT_EQ(t.lookups, ref_lookups);
    EXPECT_EQ(t.hits, ref_hits);
    EXPECT_EQ(t.evictions, ref_evictions);
    EXPECT_EQ(t.size, ref_size);
}

/** Zero total capacity: every segment sheds to a counted miss --
 *  inserts store nothing, lookups hit nothing, on ALL segments. */
TEST(StripedQueryCache, ZeroCapacityShedsToMissOnEverySegment)
{
    constexpr size_t kStripes = 8;
    StripedQueryCache cache(0, kStripes);
    for (size_t i = 0; i < kStripes; ++i)
        EXPECT_EQ(cache.stripeCapacity(i), 0u);

    // Touch enough ids that every segment sees traffic.
    for (uint64_t id = 0; id < 256; ++id) {
        cache.insert(id, resultFor(id));
        EXPECT_FALSE(cache.lookup(id, nullptr));
    }
    for (size_t i = 0; i < kStripes; ++i) {
        const StripedQueryCache::Totals st = cache.stripeTotals(i);
        EXPECT_GT(st.lookups, 0u) << "segment " << i << " untouched";
        EXPECT_EQ(st.hits, 0u) << i;
        EXPECT_EQ(st.size, 0u) << i;
        EXPECT_EQ(st.evictions, 0u) << i;
    }
    const StripedQueryCache::Totals t = cache.totals();
    EXPECT_EQ(t.lookups, 256u * 1u);
    EXPECT_EQ(t.hits, 0u);
    EXPECT_EQ(t.size, 0u);
}

/** Capacity below the stripe count: the zero-capacity segments keep
 *  shedding to miss while the funded segments cache normally. */
TEST(StripedQueryCache, CapacityBelowStripesStaysConsistent)
{
    constexpr size_t kStripes = 8;
    constexpr size_t kCapacity = 3; // segments 0..2 get 1, rest get 0
    StripedQueryCache cache(kCapacity, kStripes);

    size_t funded = 0, empty = 0;
    for (size_t i = 0; i < kStripes; ++i) {
        if (cache.stripeCapacity(i) > 0)
            ++funded;
        else
            ++empty;
    }
    EXPECT_EQ(funded, kCapacity);
    EXPECT_EQ(empty, kStripes - kCapacity);

    for (uint64_t id = 0; id < 512; ++id) {
        cache.insert(id, resultFor(id));
        const size_t s =
            StripedQueryCache::stripeFor(id, kStripes);
        // An immediate re-lookup hits iff the segment has capacity.
        EXPECT_EQ(cache.lookup(id, nullptr),
                  cache.stripeCapacity(s) > 0)
            << "query " << id;
    }
    for (size_t i = 0; i < kStripes; ++i) {
        const StripedQueryCache::Totals st = cache.stripeTotals(i);
        if (cache.stripeCapacity(i) == 0) {
            EXPECT_EQ(st.hits, 0u) << i;
            EXPECT_EQ(st.size, 0u) << i;
        } else {
            EXPECT_GT(st.hits, 0u) << i;
            EXPECT_LE(st.size, cache.stripeCapacity(i)) << i;
        }
    }
    EXPECT_EQ(cache.totals().size, kCapacity);
}

/** Concurrent mixed lookup/insert traffic: accounting stays exact
 *  (every lookup counted once; hits <= lookups; resident set bounded
 *  by capacity) and TSan sees the stripe locking. */
TEST(StripedQueryCache, ConcurrentAccountingStaysExact)
{
    constexpr size_t kStripes = 4;
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 10000;
    StripedQueryCache cache(128, kStripes);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            uint64_t state = 0x9000 + static_cast<uint64_t>(t);
            for (uint64_t i = 0; i < kPerThread; ++i) {
                const uint64_t id = splitmix64(state) % 512;
                if (!cache.lookup(id, nullptr))
                    cache.insert(id, resultFor(id));
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const StripedQueryCache::Totals totals = cache.totals();
    EXPECT_EQ(totals.lookups, kThreads * kPerThread);
    EXPECT_LE(totals.hits, totals.lookups);
    EXPECT_GT(totals.hits, 0u);
    EXPECT_LE(totals.size, 128u);
    // The hit histogram's sample count must equal the hit count:
    // exactly one latency sample per hit.
    EXPECT_EQ(cache.hitHistogram().count(), totals.hits);
}

} // namespace
} // namespace wsearch
