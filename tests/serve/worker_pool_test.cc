#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "search/corpus.hh"
#include "search/index.hh"
#include "search/leaf.hh"
#include "search/query.hh"
#include "serve/loadgen.hh"
#include "serve/worker_pool.hh"

namespace wsearch {
namespace {

/** Small shared shard for all pool tests. */
const MaterializedIndex &
testIndex()
{
    static const CorpusGenerator corpus([] {
        CorpusConfig cc;
        cc.numDocs = 2000;
        cc.vocabSize = 2000;
        cc.avgDocLen = 60;
        return cc;
    }());
    static const MaterializedIndex index(corpus);
    return index;
}

SearchRequest
asRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

QueryGenerator::Config
testTraffic()
{
    QueryGenerator::Config qc;
    qc.vocabSize = 2000;
    qc.distinctQueries = 512; // enough repeats for cache tests
    qc.maxTerms = 3;
    return qc;
}

TEST(LeafWorkerPool, ConcurrentTopKMatchesSingleThreaded)
{
    const MaterializedIndex &index = testIndex();
    const uint32_t kQueries = 400;

    // Reference: the same query stream through one executor.
    QueryGenerator gen(testTraffic());
    std::vector<Query> queries;
    for (uint32_t i = 0; i < kQueries; ++i)
        queries.push_back(gen.next());
    LeafServer::Config lc;
    lc.numThreads = 1;
    LeafServer reference(index, lc);
    std::vector<std::vector<ScoredDoc>> expected;
    for (const Query &q : queries)
        expected.push_back(reference.serve(0, asRequest(q)).docs);

    // Concurrent: 4 workers, results collected via futures.
    LeafWorkerPool::Config pc;
    pc.numWorkers = 4;
    pc.queueCapacity = 64;
    LeafWorkerPool pool(index, pc);
    std::vector<std::future<std::vector<ScoredDoc>>> futures;
    for (const Query &q : queries) {
        auto reply = std::make_shared<
            std::promise<std::vector<ScoredDoc>>>();
        futures.push_back(reply->get_future());
        EXPECT_EQ(pool.submit(asRequest(q), /*block=*/true,
                              std::move(reply)),
                  LeafWorkerPool::Admit::Accepted);
    }
    for (uint32_t i = 0; i < kQueries; ++i) {
        const std::vector<ScoredDoc> got = futures[i].get();
        ASSERT_EQ(got.size(), expected[i].size()) << "query " << i;
        for (size_t r = 0; r < got.size(); ++r) {
            EXPECT_EQ(got[r].doc, expected[i][r].doc)
                << "query " << i << " rank " << r;
            EXPECT_FLOAT_EQ(got[r].score, expected[i][r].score)
                << "query " << i << " rank " << r;
        }
    }
    pool.drain();
    const ServeSnapshot s = pool.snapshot();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.accepted, kQueries);
    EXPECT_EQ(s.completed, kQueries);
    EXPECT_EQ(s.sojournNs.count(), kQueries);
    EXPECT_EQ(s.serviceNs.count(), kQueries);
    uint64_t served = 0;
    for (const WorkerCounters &w : s.workers)
        served += w.served;
    EXPECT_EQ(served, kQueries);
}

TEST(LeafWorkerPool, AdmissionAccounting)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    pc.queueCapacity = 2;
    LeafWorkerPool pool(testIndex(), pc);
    QueryGenerator gen(testTraffic());
    const uint32_t kQueries = 500;
    for (uint32_t i = 0; i < kQueries; ++i)
        pool.submit(asRequest(gen.next()), /*block=*/false);
    pool.drain();
    const ServeSnapshot s = pool.snapshot();
    EXPECT_TRUE(s.consistent());
    EXPECT_EQ(s.submitted, kQueries);
    EXPECT_EQ(s.completed, s.accepted);
    EXPECT_EQ(s.sojournNs.count(), s.completed);
}

TEST(LeafWorkerPool, CacheTierAnswersRepeats)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    pc.cacheCapacity = 64;
    LeafWorkerPool pool(testIndex(), pc);
    QueryGenerator gen(testTraffic());
    const Query q = gen.next();

    auto reply1 = std::make_shared<
        std::promise<std::vector<ScoredDoc>>>();
    auto fut1 = reply1->get_future();
    EXPECT_EQ(pool.submit(asRequest(q), /*block=*/true,
                          std::move(reply1)),
              LeafWorkerPool::Admit::Accepted);
    const std::vector<ScoredDoc> first = fut1.get();

    auto reply2 = std::make_shared<
        std::promise<std::vector<ScoredDoc>>>();
    auto fut2 = reply2->get_future();
    EXPECT_EQ(pool.submit(asRequest(q), /*block=*/true,
                          std::move(reply2)),
              LeafWorkerPool::Admit::CacheHit);
    const std::vector<ScoredDoc> second = fut2.get();

    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].doc, second[i].doc);

    const ServeSnapshot s = pool.snapshot();
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_EQ(s.cacheHitNs.count(), 1u);
    EXPECT_TRUE(s.consistent());
}

/** A small cache must not be split so fine that stripes round down
 *  to zero entries: stripe resolution clamps to the capacity. */
TEST(LeafWorkerPool, CacheStripesClampedToCapacity)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 8; // auto stripes would want 8
    pc.cacheCapacity = 3;
    LeafWorkerPool pool(testIndex(), pc);
    EXPECT_EQ(pool.cacheStripeCount(), 2u); // pow2 <= capacity

    LeafWorkerPool::Config explicitPc;
    explicitPc.numWorkers = 2;
    explicitPc.cacheStripes = 16;
    explicitPc.cacheCapacity = 4;
    LeafWorkerPool explicitPool(testIndex(), explicitPc);
    EXPECT_EQ(explicitPool.cacheStripeCount(), 4u);

    // Zero capacity (tier off): no clamp, uniform shed-to-miss.
    LeafWorkerPool::Config offPc;
    offPc.numWorkers = 4;
    LeafWorkerPool offPool(testIndex(), offPc);
    EXPECT_EQ(offPool.cacheStripeCount(), 4u);
}

TEST(LeafWorkerPool, ShedFulfillsReplyEmpty)
{
    // Shut the pool down first so every push is refused.
    LeafWorkerPool::Config pc;
    pc.numWorkers = 1;
    pc.queueCapacity = 1;
    LeafWorkerPool pool(testIndex(), pc);
    pool.shutdown();
    QueryGenerator gen(testTraffic());
    auto reply = std::make_shared<
        std::promise<std::vector<ScoredDoc>>>();
    auto fut = reply->get_future();
    EXPECT_EQ(pool.submit(asRequest(gen.next()), /*block=*/true,
                          std::move(reply)),
              LeafWorkerPool::Admit::Shed);
    EXPECT_TRUE(fut.get().empty());
    const ServeSnapshot s = pool.snapshot();
    EXPECT_EQ(s.shed, 1u);
    EXPECT_TRUE(s.consistent());
}

TEST(LeafWorkerPool, ShutdownIsIdempotent)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    LeafWorkerPool pool(testIndex(), pc);
    pool.shutdown();
    pool.shutdown(); // second call must be a no-op
}

TEST(LoadGen, ClosedLoopCompletesAllQueries)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    LeafWorkerPool pool(testIndex(), pc);
    LoadGenConfig lg;
    lg.queries = testTraffic();
    lg.clients = 4;
    lg.numQueries = 300;
    const LoadReport r = runClosedLoop(pool, lg);
    EXPECT_TRUE(r.snap.consistent());
    EXPECT_GE(r.snap.submitted, lg.numQueries);
    EXPECT_EQ(r.snap.completed, r.snap.accepted);
    EXPECT_EQ(r.snap.shed, 0u); // blocking submits never shed
    EXPECT_GT(r.achievedQps, 0.0);
    EXPECT_GT(r.durationSec, 0.0);
    EXPECT_GT(r.snap.sojournNs.quantile(0.5), 0u);
}

TEST(LoadGen, OpenLoopDrainsAndReports)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    pc.queueCapacity = 256;
    LeafWorkerPool pool(testIndex(), pc);
    LoadGenConfig lg;
    lg.queries = testTraffic();
    lg.offeredQps = 2000.0;
    lg.numQueries = 400;
    const LoadReport r = runOpenLoop(pool, lg);
    EXPECT_TRUE(r.snap.consistent());
    EXPECT_EQ(r.snap.submitted, lg.numQueries);
    EXPECT_EQ(r.snap.completed, r.snap.accepted);
    EXPECT_EQ(r.snap.sojournNs.count(), r.snap.completed);
    EXPECT_GT(r.snap.completed, 0u);
    EXPECT_GT(r.achievedQps, 0.0);
    // p50 and p99 are real, ordered latencies.
    const uint64_t p50 = r.snap.sojournNs.quantile(0.5);
    const uint64_t p99 = r.snap.sojournNs.quantile(0.99);
    EXPECT_GT(p50, 0u);
    EXPECT_GE(p99, p50);
}

TEST(LoadGen, OpenLoopCacheTierAbsorbsRepeats)
{
    LeafWorkerPool::Config pc;
    pc.numWorkers = 2;
    pc.queueCapacity = 256;
    pc.cacheCapacity = 1024; // > distinctQueries: everything caches
    LeafWorkerPool pool(testIndex(), pc);
    LoadGenConfig lg;
    lg.queries = testTraffic(); // 512 distinct queries
    lg.offeredQps = 4000.0;
    lg.numQueries = 2000;
    const LoadReport r = runOpenLoop(pool, lg);
    EXPECT_TRUE(r.snap.consistent());
    EXPECT_GT(r.snap.cacheHits, 0u);
    EXPECT_EQ(r.snap.cacheHits + r.snap.accepted + r.snap.shed,
              lg.numQueries);
}

} // namespace
} // namespace wsearch
