#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hh"

namespace wsearch {
namespace {

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.tryPush(std::move(i)));
    EXPECT_EQ(q.depth(), 5u);
    int out;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, TryPushShedsWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)); // full: shed
    int out;
    EXPECT_TRUE(q.pop(out));
    EXPECT_TRUE(q.tryPush(3)); // space again
}

TEST(BoundedQueue, TryPushLeavesValueIntactOnShed)
{
    BoundedQueue<std::vector<int>> q(1);
    EXPECT_TRUE(q.tryPush({1}));
    std::vector<int> v{1, 2, 3};
    EXPECT_FALSE(q.tryPush(std::move(v)));
    // Shed must not have moved the value out.
    EXPECT_EQ(v.size(), 3u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.tryPush(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2)); // blocks until the pop below
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    int out;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
}

TEST(BoundedQueue, PopBlocksUntilPush)
{
    BoundedQueue<int> q(4);
    std::atomic<int> got{-1};
    std::thread consumer([&] {
        int out;
        EXPECT_TRUE(q.pop(out));
        got.store(out);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(got.load(), -1);
    EXPECT_TRUE(q.tryPush(42));
    consumer.join();
    EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueue, CloseDrainsThenStops)
{
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(3)); // closed: refused
    EXPECT_FALSE(q.push(4));
    int out;
    EXPECT_TRUE(q.pop(out)); // queued items still drain
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(q.pop(out)); // drained + closed: shutdown signal
}

TEST(BoundedQueue, CloseUnblocksBlockedPush)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.tryPush(1));
    std::atomic<bool> returned{false};
    std::thread blocked_push([&] {
        EXPECT_FALSE(q.push(2)); // full, then closed: refused
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    q.close();
    blocked_push.join();
    EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, CloseUnblocksBlockedPop)
{
    BoundedQueue<int> q(1);
    std::atomic<bool> returned{false};
    std::thread blocked_pop([&] {
        int out;
        EXPECT_FALSE(q.pop(out)); // empty, then closed: shutdown
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    q.close();
    blocked_pop.join();
    EXPECT_TRUE(returned.load());
}

TEST(BoundedQueue, MpmcStressPreservesItems)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;
    BoundedQueue<int> q(64);
    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int v = p * kPerProducer + i;
                ASSERT_TRUE(q.push(std::move(v)));
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            int out;
            while (q.pop(out)) {
                sum.fetch_add(out);
                popped.fetch_add(1);
            }
        });
    }
    for (int p = 0; p < kProducers; ++p)
        threads[p].join();
    q.close();
    for (size_t t = kProducers; t < threads.size(); ++t)
        threads[t].join();

    const long long n = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_EQ(q.depth(), 0u);
}

} // namespace
} // namespace wsearch
