#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/latency_histogram.hh"
#include "util/rng.hh"

namespace wsearch {
namespace {

/** Reference quantile: smallest v with count(<= v) >= ceil(q * N). */
uint64_t
refQuantile(std::vector<uint64_t> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (target < 1)
        target = 1;
    return sorted[target - 1];
}

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesExact)
{
    // Values below 64 land in unit-width buckets: quantiles exact.
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 10; ++v)
        h.record(v);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(0.1), 1u);
    EXPECT_EQ(h.quantile(1.0), 10u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LatencyHistogram, BucketBoundsConsistent)
{
    // Every bucket's upper bound must map back to the same bucket,
    // and upper bounds must be strictly increasing.
    uint64_t prev = 0;
    for (size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
        const uint64_t ub = LatencyHistogram::bucketUpperBound(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(ub), i) << "bucket "
                                                        << i;
        EXPECT_GT(ub, prev) << "bucket " << i;
        prev = ub;
    }
}

TEST(LatencyHistogram, QuantilesMatchSortedReference)
{
    // Log-uniform values over ~6 decades, typical of latency data.
    LatencyHistogram h;
    Rng rng(42);
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
        const double ln = 3.0 + 14.0 * rng.nextDouble(); // e^3..e^17
        const uint64_t v =
            static_cast<uint64_t>(std::exp(ln)) + 1;
        values.push_back(v);
        h.record(v);
    }
    for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
        const double ref =
            static_cast<double>(refQuantile(values, q));
        const double got = static_cast<double>(h.quantile(q));
        // Bucket resolution is 1/64 (~1.6%); allow 2x slack.
        EXPECT_NEAR(got / ref, 1.0, 2.0 / 64.0) << "q=" << q;
        EXPECT_GE(got, ref * (1.0 - 1.0 / 64.0)) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0),
              *std::max_element(values.begin(), values.end()));
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    LatencyHistogram a, b, combined;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng.nextRange(1u << 20) + 1;
        combined.record(v);
        (i % 2 ? a : b).record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogram, MergeIntoEmptyPreservesMinMax)
{
    LatencyHistogram a, b;
    b.record(100);
    b.record(5000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 100u);
    EXPECT_EQ(a.max(), 5000u);
    // Merging an empty histogram must not clobber min/max.
    LatencyHistogram empty;
    a.merge(empty);
    EXPECT_EQ(a.min(), 100u);
    EXPECT_EQ(a.max(), 5000u);
}

TEST(LatencyHistogram, ClearResets)
{
    LatencyHistogram h;
    h.record(123456);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
    h.record(7);
    EXPECT_EQ(h.quantile(0.5), 7u);
}

} // namespace
} // namespace wsearch
