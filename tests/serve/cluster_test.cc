#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "search/corpus.hh"
#include "search/root.hh"
#include "search/sharding.hh"
#include "serve/cluster.hh"
#include "serve/loadgen.hh"

namespace wsearch {
namespace {

CorpusConfig
testCorpusConfig()
{
    CorpusConfig cc;
    cc.numDocs = 1200;
    cc.vocabSize = 2000;
    cc.avgDocLen = 60;
    return cc;
}

QueryGenerator::Config
testTraffic()
{
    QueryGenerator::Config qc;
    qc.vocabSize = 2000;
    qc.distinctQueries = 4096;
    qc.maxTerms = 3;
    return qc;
}

SearchRequest
asRequest(const Query &q)
{
    SearchRequest req;
    req.query = q;
    return req;
}

/** Serial scatter-gather over the same shards: the reference the
 *  concurrent cluster must reproduce at full coverage. */
std::vector<ScoredDoc>
serialReference(const ShardedIndex &si, const Query &q)
{
    std::vector<std::vector<ScoredDoc>> partials;
    for (uint32_t s = 0; s < si.numShards(); ++s) {
        LeafServer leaf(si.shard(s), si.leafConfig(s));
        partials.push_back(leaf.serve(0, asRequest(q)).docs);
    }
    return RootServer::merge(partials, q.topK);
}

TEST(Sharding, PartitionIsDisjointAndComplete)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 4);
    ASSERT_EQ(si.numShards(), 4u);
    uint32_t total = 0;
    for (uint32_t s = 0; s < 4; ++s)
        total += si.shard(s).numDocs();
    EXPECT_EQ(total, corpus.config().numDocs);
    // Shard s, local doc d holds global doc d * 4 + s: spot-check the
    // doc lengths against the corpus.
    for (uint32_t s = 0; s < 4; ++s) {
        for (DocId d = 0; d < 3; ++d) {
            const Document doc = corpus.document(d * 4 + s);
            EXPECT_EQ(si.shard(s).docLen(d), doc.terms.size());
        }
    }
}

TEST(ClusterServer, FullCoverageMatchesSerialReference)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 4);

    ClusterConfig cc;
    cc.pool.numWorkers = 2;
    cc.deadlineNs = 0; // wait for every shard
    ClusterServer cluster(si.shardPtrs(), cc);

    QueryGenerator gen(testTraffic());
    for (uint32_t i = 0; i < 60; ++i) {
        const Query q = gen.next();
        const ClusterResult res = cluster.handle(asRequest(q));
        EXPECT_EQ(res.page.shardsTotal, 4u);
        ASSERT_EQ(res.page.shardsAnswered, 4u) << "query " << i;
        EXPECT_FALSE(res.page.degraded());
        const std::vector<ScoredDoc> expected =
            serialReference(si, q);
        ASSERT_EQ(res.page.docs.size(), expected.size())
            << "query " << i;
        for (size_t r = 0; r < expected.size(); ++r) {
            EXPECT_EQ(res.page.docs[r].doc, expected[r].doc)
                << "query " << i << " rank " << r;
            EXPECT_FLOAT_EQ(res.page.docs[r].score,
                            expected[r].score)
                << "query " << i << " rank " << r;
        }
    }
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, 60u);
    EXPECT_EQ(snap.degraded, 0u);
    EXPECT_DOUBLE_EQ(snap.meanCoverage(), 1.0);
    EXPECT_EQ(snap.queryNs.count(), 60u);
    EXPECT_EQ(snap.shardNs.count(), 240u);
}

TEST(ClusterServer, TightDeadlineDegradesGracefully)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 4);

    ClusterConfig cc;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 1000; // 1 us: no leaf can answer in time
    ClusterServer cluster(si.shardPtrs(), cc);

    QueryGenerator gen(testTraffic());
    uint64_t answered = 0;
    for (uint32_t i = 0; i < 20; ++i) {
        const ClusterResult res = cluster.handle(asRequest(gen.next()));
        EXPECT_EQ(res.page.shardsTotal, 4u);
        answered += res.page.shardsAnswered;
        // Whatever merged is still a valid, ordered page.
        for (size_t r = 1; r < res.page.docs.size(); ++r)
            EXPECT_TRUE(res.page.docs[r] < res.page.docs[r - 1] ||
                        !(res.page.docs[r - 1] <
                          res.page.docs[r]));
    }
    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, 20u);
    EXPECT_LT(snap.meanCoverage(), 1.0);
    EXPECT_GT(snap.shardMisses, 0u);
    // Leaves drop expired work instead of executing it: everything
    // the gather gave up on was either expired at the worker or
    // executed too late; the pools must stay consistent either way.
    uint64_t expired = 0;
    for (const ShardSnapshot &ss : snap.shards) {
        EXPECT_TRUE(ss.pool.consistent());
        expired += ss.pool.expired;
    }
    EXPECT_GT(expired + answered, 0u);
}

TEST(ClusterServer, HedgingAccountsAndStaysConsistent)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 2);

    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 2'000'000'000; // generous
    cc.hedgeDelayNs = 50'000;      // 50 us: hedges fire regularly
    ClusterServer cluster(si.shardPtrs(), cc);

    QueryGenerator gen(testTraffic());
    uint64_t hedges = 0;
    for (uint32_t i = 0; i < 50; ++i) {
        const ClusterResult res = cluster.handle(asRequest(gen.next()));
        EXPECT_EQ(res.page.shardsAnswered, 2u);
        hedges += res.hedges;
    }
    cluster.drainAll();
    const ClusterSnapshot snap = cluster.snapshot();
    EXPECT_EQ(snap.queries, 50u);
    EXPECT_EQ(snap.hedgesIssued, hedges);
    EXPECT_LE(snap.hedgeWins, snap.hedgesIssued);
    uint64_t shard_hedges = 0, executed = 0, cancelled = 0;
    for (const ShardSnapshot &ss : snap.shards) {
        EXPECT_TRUE(ss.pool.consistent());
        shard_hedges += ss.hedges;
        executed += ss.pool.executed();
        cancelled += ss.pool.cancelled;
    }
    EXPECT_EQ(shard_hedges, hedges);
    // Every query needs one execution per shard; hedges add at most
    // one more each (cancellation reclaims the rest).
    EXPECT_GE(executed, 100u);
    EXPECT_LE(executed, 100u + hedges);
    EXPECT_LE(cancelled, hedges);
}

TEST(ClusterServer, ConcurrentCallersStaysConsistent)
{
    const CorpusGenerator corpus(testCorpusConfig());
    const ShardedIndex si = buildShardedIndex(corpus, 2);

    ClusterConfig cc;
    cc.replicasPerShard = 2;
    cc.pool.numWorkers = 1;
    cc.deadlineNs = 2'000'000'000;
    cc.hedgeDelayNs = 200'000;
    ClusterServer cluster(si.shardPtrs(), cc);

    LoadGenConfig lg;
    lg.queries = testTraffic();
    lg.clients = 4;
    lg.numQueries = 120;
    const ClusterLoadReport r = runClusterClosedLoop(cluster, lg);
    EXPECT_GE(r.snap.queries, lg.numQueries);
    EXPECT_GT(r.achievedQps, 0.0);
    EXPECT_EQ(r.snap.shardAnswers + r.snap.shardMisses,
              r.snap.queries * 2);
    EXPECT_EQ(r.snap.queryNs.count(), r.snap.queries);
    for (const ShardSnapshot &ss : r.snap.shards)
        EXPECT_TRUE(ss.pool.consistent());
}

// ---------------------------------------------------------------
// Coverage-aware merge (RootServer::mergeWithCoverage)
// ---------------------------------------------------------------

std::vector<std::vector<ScoredDoc>>
mergeFixture()
{
    // 4 shards; shard 3 will be the one that misses.
    return {
        {{0, 9.0f}, {4, 6.5f}, {8, 3.0f}},
        {{1, 8.0f}, {5, 6.5f}, {9, 2.0f}},
        {{2, 7.0f}, {6, 5.0f}},
        {{3, 9.5f}, {7, 0.5f}},
    };
}

/** Sorted union of the answered partials, truncated to k. */
std::vector<ScoredDoc>
sortedReference(const std::vector<std::vector<ScoredDoc>> &partials,
                const std::vector<uint8_t> &answered, uint32_t k)
{
    std::vector<ScoredDoc> all;
    for (size_t s = 0; s < partials.size(); ++s)
        if (answered[s])
            all.insert(all.end(), partials[s].begin(),
                       partials[s].end());
    std::sort(all.begin(), all.end(),
              [](const ScoredDoc &a, const ScoredDoc &b) {
                  return b < a;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

TEST(MergeWithCoverage, DegradedPageMatchesSortedReference)
{
    const auto partials = mergeFixture();
    const std::vector<uint8_t> answered = {1, 1, 1, 0};
    const MergedPage page =
        RootServer::mergeWithCoverage(partials, answered, 5);
    EXPECT_EQ(page.shardsTotal, 4u);
    EXPECT_EQ(page.shardsAnswered, 3u);
    EXPECT_TRUE(page.degraded());
    EXPECT_DOUBLE_EQ(page.coverage(), 0.75);

    const auto expected = sortedReference(partials, answered, 5);
    ASSERT_EQ(page.docs.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(page.docs[i].doc, expected[i].doc) << "rank " << i;
        EXPECT_FLOAT_EQ(page.docs[i].score, expected[i].score);
    }
    // The missing shard's docs (3, 7) must not appear.
    for (const ScoredDoc &sd : page.docs)
        EXPECT_NE(sd.doc % 4, 3u);
}

TEST(MergeWithCoverage, DeterministicAcrossRepeats)
{
    const auto partials = mergeFixture();
    const std::vector<uint8_t> answered = {1, 0, 1, 1};
    const MergedPage first =
        RootServer::mergeWithCoverage(partials, answered, 4);
    for (int rep = 0; rep < 10; ++rep) {
        const MergedPage again =
            RootServer::mergeWithCoverage(partials, answered, 4);
        ASSERT_EQ(again.docs.size(), first.docs.size());
        for (size_t i = 0; i < first.docs.size(); ++i)
            EXPECT_EQ(again.docs[i].doc, first.docs[i].doc);
    }
}

TEST(MergeWithCoverage, TieBreaksByDocIdAscending)
{
    // Docs 4 and 5 share score 6.5: lower doc id ranks first.
    const auto partials = mergeFixture();
    const std::vector<uint8_t> answered = {1, 1, 0, 0};
    const MergedPage page =
        RootServer::mergeWithCoverage(partials, answered, 6);
    const auto pos = [&](DocId d) {
        for (size_t i = 0; i < page.docs.size(); ++i)
            if (page.docs[i].doc == d)
                return i;
        return page.docs.size();
    };
    EXPECT_LT(pos(4), pos(5));
}

TEST(MergeWithCoverage, DeduplicatesKeepingBestScore)
{
    // A primary and its hedge both answered for shard 0 and ended up
    // in different partial slots: doc 4 appears twice.
    const std::vector<std::vector<ScoredDoc>> partials = {
        {{0, 9.0f}, {4, 6.5f}},
        {{4, 7.5f}, {0, 9.0f}},
    };
    const std::vector<uint8_t> answered = {1, 1};
    const MergedPage page =
        RootServer::mergeWithCoverage(partials, answered, 10);
    ASSERT_EQ(page.docs.size(), 2u);
    EXPECT_EQ(page.docs[0].doc, 0u);
    EXPECT_EQ(page.docs[1].doc, 4u);
    EXPECT_FLOAT_EQ(page.docs[1].score, 7.5f); // best score kept
}

TEST(MergeWithCoverage, ZeroAnsweredYieldsEmptyValidPage)
{
    const auto partials = mergeFixture();
    const std::vector<uint8_t> answered = {0, 0, 0, 0};
    const MergedPage page =
        RootServer::mergeWithCoverage(partials, answered, 5);
    EXPECT_TRUE(page.docs.empty());
    EXPECT_EQ(page.shardsAnswered, 0u);
    EXPECT_TRUE(page.degraded());
    EXPECT_DOUBLE_EQ(page.coverage(), 0.0);
}

} // namespace
} // namespace wsearch
