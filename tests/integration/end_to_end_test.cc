/**
 * Cross-module integration tests: the full pipelines the benches rely
 * on, at miniature scale so they run in seconds.
 */
#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "core/l4_evaluator.hh"
#include "core/optimizer.hh"
#include "search/engine_trace.hh"

namespace wsearch {
namespace {

TEST(EndToEnd, EngineTraceThroughFullSystem)
{
    // Instrumented search engine -> cache + branch + core model.
    ProceduralIndex::Config pc;
    pc.numDocs = 100000;
    pc.numTerms = 10000;
    pc.maxDocFreq = 1000;
    pc.minDocFreq = 8;
    ProceduralIndex shard(pc);
    EngineTraceConfig tc;
    tc.numThreads = 2;
    tc.queries.vocabSize = shard.numTerms();
    tc.code.footprintBytes = 128 * KiB;
    EngineTraceSource trace(shard, tc);

    SystemConfig cfg;
    cfg.hierarchy.numCores = 2;
    cfg.hierarchy.llc = cache_gen_llc(4 * MiB, 64, 16);
    SystemSimulator sim(cfg);
    const SystemResult r = sim.run(trace, 300'000, 1'000'000);

    EXPECT_EQ(r.instructions, 1'000'000u);
    EXPECT_GT(r.ipcPerThread, 0.05);
    EXPECT_LT(r.ipcPerThread, 4.0);
    EXPECT_GT(r.l3.mpki(AccessKind::Shard, r.instructions), 0.0);
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(trace.queriesExecuted(), 0u);
}

TEST(EndToEnd, SweepProfileHitCurveIsMonotone)
{
    // The property every §IV model consumes: bigger L3, higher data
    // hit rate, on the actual sweep profile.
    WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    RunOptions opt;
    opt.cores = 4;
    opt.measureRecords = 1'500'000;
    opt.warmupRecords = 3'000'000;
    double prev = -1.0;
    for (const uint64_t size :
         {256 * KiB, 1 * MiB, 4 * MiB}) {
        opt.l3Bytes = size;
        const SystemResult r =
            runWorkload(prof, PlatformConfig::plt1(), opt);
        EXPECT_GT(r.l3DataHitRate(), prev - 0.01)
            << "size " << size;
        prev = r.l3DataHitRate();
    }
    EXPECT_GT(prev, 0.3);
}

TEST(EndToEnd, VictimL4CutsDramTraffic)
{
    WorkloadProfile prof = WorkloadProfile::s1LeafCapacitySweep();
    RunOptions opt;
    opt.cores = 4;
    opt.l3Bytes = 736 * KiB;
    opt.measureRecords = 2'000'000;
    opt.warmupRecords = 4'000'000;
    const SystemResult no_l4 =
        runWorkload(prof, PlatformConfig::plt1(), opt);
    opt.l4 = cache_gen_victim(32 * MiB, 64);
    const SystemResult with_l4 =
        runWorkload(prof, PlatformConfig::plt1(), opt);
    // DRAM accesses = L3 misses without L4, L4 misses with it.
    EXPECT_LT(with_l4.l4.totalMisses(), no_l4.l3.totalMisses());
    EXPECT_GT(with_l4.l4.hitRateTotal(), 0.15);
}

TEST(EndToEnd, OptimizerOnSimulatedCurveFindsInteriorOptimum)
{
    // Miniature fig-10 pipeline: simulate a hit curve, run the
    // optimizer, expect an interior optimum (not the extremes).
    WorkloadProfile prof = WorkloadProfile::s1LeafSweep();
    RunOptions opt;
    opt.cores = 8;
    opt.measureRecords = 2'000'000;
    opt.warmupRecords = 5'000'000;
    HitRateCurve curve;
    for (const uint64_t paper :
         {9ull * MiB, 18ull * MiB, 27ull * MiB, 36ull * MiB,
          45ull * MiB}) {
        opt.l3Bytes = paper / prof.sweepScale;
        const SystemResult r =
            runWorkload(prof, PlatformConfig::plt1(), opt);
        curve.addPoint(paper, r.l3DataHitRate());
    }
    CacheForCoresOptimizer optimizer(AreaModel{}, AmatModel{},
                                     IpcModel::paperEq1(), curve);
    const TradeoffPoint best = optimizer.best();
    EXPECT_GT(best.qpsQuantized, 0.0);
    EXPECT_GT(best.l3MibPerCore, 0.4);
    EXPECT_LT(best.l3MibPerCore, 2.3);
}

TEST(EndToEnd, DeterministicBenchPipeline)
{
    // The same configuration twice must produce identical metrics
    // (all benches rely on this for reproducibility).
    auto run_once = []() {
        RunOptions opt;
        opt.cores = 4;
        opt.measureRecords = 500'000;
        return runWorkload(WorkloadProfile::s1Leaf(),
                           PlatformConfig::plt1(), opt);
    };
    const SystemResult a = run_once();
    const SystemResult b = run_once();
    EXPECT_EQ(a.l3.totalMisses(), b.l3.totalMisses());
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_DOUBLE_EQ(a.ipcPerThread, b.ipcPerThread);
}

} // namespace
} // namespace wsearch
