#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stats/working_set.hh"
#include "trace/synthetic.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p = WorkloadProfile::s1Leaf();
    p.code.footprintBytes = 64 * KiB;
    p.heapWorkingSetBytes = 1 * MiB;
    p.shardSpanBytes = 64 * MiB;
    return p;
}

std::vector<TraceRecord>
collect(SyntheticSearchTrace &src, size_t n)
{
    std::vector<TraceRecord> out(n);
    size_t got = 0;
    while (got < n)
        got += src.fill(out.data() + got, n - got);
    return out;
}

TEST(Synthetic, AddressesLandInSegmentRegions)
{
    SyntheticSearchTrace src(tinyProfile(), 2);
    for (const auto &r : collect(src, 100000)) {
        ASSERT_GE(r.pc, vaddr::kCodeBase);
        ASSERT_LT(r.pc, vaddr::kHeapBase);
        if (!r.hasData())
            continue;
        switch (r.kind) {
          case AccessKind::Heap:
            ASSERT_GE(r.addr, vaddr::kHeapBase);
            ASSERT_LT(r.addr, vaddr::kShardBase);
            break;
          case AccessKind::Shard:
            ASSERT_GE(r.addr, vaddr::kShardBase);
            ASSERT_LT(r.addr, vaddr::kStackBase);
            break;
          case AccessKind::Stack:
            ASSERT_GE(r.addr, vaddr::kStackBase);
            break;
          default:
            FAIL() << "unexpected kind";
        }
    }
}

TEST(Synthetic, Deterministic)
{
    SyntheticSearchTrace a(tinyProfile(), 4), b(tinyProfile(), 4);
    const auto ra = collect(a, 20000);
    const auto rb = collect(b, 20000);
    for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_EQ(ra[i].pc, rb[i].pc);
        ASSERT_EQ(ra[i].addr, rb[i].addr);
        ASSERT_EQ(ra[i].tid, rb[i].tid);
    }
}

TEST(Synthetic, ResetRestartsStream)
{
    SyntheticSearchTrace src(tinyProfile(), 2);
    const auto first = collect(src, 5000);
    src.reset();
    const auto again = collect(src, 5000);
    for (size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i].addr, again[i].addr);
}

TEST(Synthetic, RoundRobinThreads)
{
    SyntheticSearchTrace src(tinyProfile(), 4);
    const auto recs = collect(src, 64);
    for (size_t i = 0; i < recs.size(); ++i)
        ASSERT_EQ(recs[i].tid, i % 4);
}

TEST(Synthetic, LoadStoreFractions)
{
    WorkloadProfile p = tinyProfile();
    p.loadFrac = 0.3;
    p.storeFrac = 0.1;
    SyntheticSearchTrace src(p, 1);
    uint64_t loads = 0, stores = 0, n = 400000;
    for (const auto &r : collect(src, n)) {
        if (r.op == MemOp::Load)
            ++loads;
        else if (r.op == MemOp::Store)
            ++stores;
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, 0.3, 0.01);
    EXPECT_NEAR(static_cast<double>(stores) / n, 0.1, 0.01);
}

TEST(Synthetic, SharedHeapWorkingSetBounded)
{
    WorkloadProfile p = tinyProfile();
    p.heapWorkingSetBytes = 256 * KiB;
    p.heapHotFrac = 0.2;
    p.heapWarmFrac = 0.1; // leave 70% of heap accesses to the shared WS
    SyntheticSearchTrace src(p, 4);
    // The shared component lives at the bottom of the heap region.
    WorkingSetTracker ws(vaddr::kHeapBase, 1 * GiB, 64);
    for (const auto &r : collect(src, 800000))
        if (r.hasData() && r.kind == AccessKind::Heap)
            ws.touch(r.addr);
    EXPECT_LE(ws.workingSetBytes(), 256 * KiB);
    // And most of it should actually be touched (Zipf covers it).
    EXPECT_GE(ws.workingSetBytes(), 128 * KiB);
}

TEST(Synthetic, ScratchRegionsArePerThread)
{
    SyntheticSearchTrace src(tinyProfile(), 2);
    std::set<uint64_t> scratch0, scratch1;
    for (const auto &r : collect(src, 400000)) {
        if (!r.hasData() || r.kind != AccessKind::Heap)
            continue;
        if (r.addr < vaddr::kHeapBase + (1ull << 40))
            continue; // shared component
        (r.tid == 0 ? scratch0 : scratch1).insert(r.addr / 64);
    }
    ASSERT_FALSE(scratch0.empty());
    for (auto b : scratch0)
        ASSERT_EQ(scratch1.count(b), 0u);
}

TEST(Synthetic, HeapSharedAcrossThreadsShardDisjoint)
{
    // The defining Figure 5 mechanism: shared-heap blocks overlap
    // heavily between threads; shard blocks almost never do.
    WorkloadProfile p = tinyProfile();
    p.heapHotFrac = 0.2;
    p.heapWarmFrac = 0.1; // 70% of heap accesses hit the shared WS
    SyntheticSearchTrace src(p, 2);
    std::set<uint64_t> heap0, heap1, shard0, shard1;
    for (const auto &r : collect(src, 2000000)) {
        if (!r.hasData())
            continue;
        const uint64_t block = r.addr / 64;
        if (r.kind == AccessKind::Heap) {
            if (r.addr >= vaddr::kHeapBase + (1ull << 40))
                continue; // per-thread scratch: disjoint by design
            (r.tid == 0 ? heap0 : heap1).insert(block);
        } else if (r.kind == AccessKind::Shard) {
            (r.tid == 0 ? shard0 : shard1).insert(block);
        }
    }
    auto overlap = [](const std::set<uint64_t> &a,
                      const std::set<uint64_t> &b) {
        uint64_t inter = 0;
        for (auto x : a)
            if (b.count(x))
                ++inter;
        return static_cast<double>(inter) /
            static_cast<double>(std::min(a.size(), b.size()));
    };
    EXPECT_GT(overlap(heap0, heap1), 0.5);
    EXPECT_LT(overlap(shard0, shard1), 0.1);
}

TEST(Synthetic, ShardRunsAreSequential)
{
    WorkloadProfile p = tinyProfile();
    p.shardFrac = 0.5;
    p.heapFrac = 0.3;
    p.stackFrac = 0.2;
    SyntheticSearchTrace src(p, 1);
    uint64_t prev = 0;
    uint64_t sequential = 0, total = 0;
    for (const auto &r : collect(src, 200000)) {
        if (!r.hasData() || r.kind != AccessKind::Shard)
            continue;
        if (prev && r.addr == prev + p.shardItemBytes)
            ++sequential;
        ++total;
        prev = r.addr;
    }
    // Most shard accesses continue the current run.
    EXPECT_GT(static_cast<double>(sequential) / total, 0.9);
}

TEST(Synthetic, BranchRecordsConsistent)
{
    SyntheticSearchTrace src(tinyProfile(), 1);
    for (const auto &r : collect(src, 100000)) {
        if (r.branch == BranchKind::Taken) {
            ASSERT_NE(r.target, 0u);
        }
        if (r.branch == BranchKind::NotBranch) {
            ASSERT_EQ(r.target, 0u);
        }
    }
}

} // namespace
} // namespace wsearch
