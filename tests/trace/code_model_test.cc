#include <gtest/gtest.h>

#include <set>

#include "trace/code_model.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

CodeModelConfig
smallCode()
{
    CodeModelConfig c;
    c.footprintBytes = 256 * KiB;
    c.functionBytes = 1024;
    return c;
}

TEST(CodeModel, PcsStayInFootprint)
{
    CodeModel m(smallCode(), 0x400000, 99, 1);
    for (int i = 0; i < 200000; ++i) {
        const FetchedInstr f = m.next();
        ASSERT_GE(f.pc, 0x400000u);
        ASSERT_LT(f.pc, m.codeLimit());
        if (f.isBranch && f.taken) {
            ASSERT_GE(f.target, 0x400000u);
            ASSERT_LT(f.target, m.codeLimit());
        }
    }
}

TEST(CodeModel, Deterministic)
{
    CodeModel a(smallCode(), 0x400000, 99, 7), b(smallCode(), 0x400000, 99, 7);
    for (int i = 0; i < 10000; ++i) {
        const FetchedInstr fa = a.next();
        const FetchedInstr fb = b.next();
        ASSERT_EQ(fa.pc, fb.pc);
        ASSERT_EQ(fa.isBranch, fb.isBranch);
        ASSERT_EQ(fa.taken, fb.taken);
        ASSERT_EQ(fa.target, fb.target);
    }
}

TEST(CodeModel, BranchFractionNearConfig)
{
    CodeModelConfig c = smallCode();
    c.branchEvery = 6.0;
    CodeModel m(c, 0x400000, 99, 3);
    int branches = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        if (m.next().isBranch)
            ++branches;
    const double frac = static_cast<double>(branches) / n;
    // Roughly 1/(branchEvery+1), with tolerance for loops/calls.
    EXPECT_GT(frac, 0.09);
    EXPECT_LT(frac, 0.22);
}

TEST(CodeModel, SequentialFetchBetweenBranches)
{
    CodeModel m(smallCode(), 0x400000, 99, 5);
    FetchedInstr prev = m.next();
    for (int i = 0; i < 50000; ++i) {
        const FetchedInstr cur = m.next();
        if (!prev.isBranch) {
            ASSERT_EQ(cur.pc, prev.pc + 4)
                << "non-branch must fall through";
        } else if (prev.taken) {
            ASSERT_EQ(cur.pc, prev.target);
        } else {
            ASSERT_EQ(cur.pc, prev.pc + 4);
        }
        prev = cur;
    }
}

TEST(CodeModel, TouchesManyFunctions)
{
    CodeModel m(smallCode(), 0x400000, 99, 9);
    std::set<uint64_t> functions;
    for (int i = 0; i < 500000; ++i) {
        const uint64_t pc = m.next().pc;
        functions.insert((pc - 0x400000) / 1024);
    }
    // Zipf over 256 functions: most should be touched eventually.
    EXPECT_GT(functions.size(), 128u);
}

TEST(CodeModel, ZipfSkewsTowardsHotFunctions)
{
    CodeModelConfig c = smallCode();
    c.functionTheta = 0.9;
    CodeModel m(c, 0x400000, 99, 11);
    std::vector<uint64_t> counts(m.numFunctions(), 0);
    for (int i = 0; i < 500000; ++i)
        ++counts[(m.next().pc - 0x400000) / 1024];
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0, total = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        total += counts[i];
        if (i < counts.size() / 10)
            top += counts[i];
    }
    // Top 10% of functions should get well over 10% of fetches.
    EXPECT_GT(static_cast<double>(top) / total, 0.3);
}

TEST(CodeModel, FootprintScalesFunctions)
{
    CodeModelConfig small = smallCode();
    CodeModelConfig large = smallCode();
    large.footprintBytes = 4 * MiB;
    CodeModel a(small, 0x400000, 99, 1), b(large, 0x400000, 99, 1);
    EXPECT_EQ(a.numFunctions(), 256u);
    EXPECT_EQ(b.numFunctions(), 4096u);
}

TEST(CodeModel, LoopsCreateImmediateReuse)
{
    // With aggressive looping, recent PCs repeat often.
    CodeModelConfig c = smallCode();
    c.loopRepeatProb = 0.9;
    c.loopMeanIters = 8.0;
    CodeModel m(c, 0x400000, 99, 13);
    std::set<uint64_t> window;
    int repeats = 0;
    const int n = 100000;
    std::vector<uint64_t> recent;
    for (int i = 0; i < n; ++i) {
        const uint64_t pc = m.next().pc;
        if (window.count(pc))
            ++repeats;
        recent.push_back(pc);
        window.insert(pc);
        if (recent.size() > 64) {
            window.erase(recent.front());
            recent.erase(recent.begin());
        }
    }
    EXPECT_GT(static_cast<double>(repeats) / n, 0.3);
}

} // namespace
} // namespace wsearch
