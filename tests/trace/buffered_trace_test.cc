#include <gtest/gtest.h>

#include "trace/buffered_trace.hh"
#include "trace/profile.hh"
#include "trace/synthetic.hh"

namespace wsearch {
namespace {

/** Deterministic finite source with an awkward fill granularity. */
class CountingSource : public TraceSource
{
  public:
    CountingSource(uint64_t total, size_t max_fill)
        : total_(total), maxFill_(max_fill)
    {
    }

    size_t
    fill(TraceRecord *buf, size_t max) override
    {
        size_t n = 0;
        while (n < max && n < maxFill_ && pos_ < total_) {
            TraceRecord r;
            r.pc = 0x400000 + pos_ * 4;
            r.addr = 0x9000 + pos_ * 8;
            r.op = MemOp::Load;
            r.tid = static_cast<uint16_t>(pos_ % 7);
            buf[n++] = r;
            ++pos_;
        }
        return n;
    }

    void reset() override { pos_ = 0; }

  private:
    uint64_t total_;
    size_t maxFill_;
    uint64_t pos_ = 0;
};

TEST(BufferedTrace, MaterializesRequestedRecordsInOrder)
{
    CountingSource src(10'000, 333);
    const auto trace = BufferedTrace::materialize(src, 2'500, 1000);
    ASSERT_EQ(trace->size(), 2'500u);
    EXPECT_EQ(trace->numChunks(), 3u);
    for (uint64_t i = 0; i < trace->size(); ++i) {
        EXPECT_EQ(trace->at(i).pc, 0x400000 + i * 4);
        EXPECT_EQ(trace->at(i).tid, i % 7);
    }
}

TEST(BufferedTrace, StopsAtSourceExhaustion)
{
    CountingSource src(1'234, 100);
    const auto trace = BufferedTrace::materialize(src, 5'000, 512);
    EXPECT_EQ(trace->size(), 1'234u);
    // All chunks but the last are full.
    for (size_t c = 0; c + 1 < trace->numChunks(); ++c)
        EXPECT_EQ(trace->chunk(c).count, 512u);
}

TEST(BufferedTrace, SpanAtClipsToChunkEdgeAndLength)
{
    CountingSource src(4'000, 4'000);
    const auto trace = BufferedTrace::materialize(src, 3'000, 1000);

    // Mid-chunk span clipped by max_len.
    BufferedTrace::Span s = trace->spanAt(100, 50);
    ASSERT_EQ(s.count, 50u);
    EXPECT_EQ(s.data[0].pc, 0x400000 + 100 * 4);

    // Span straddling a chunk boundary is clipped to the edge.
    s = trace->spanAt(900, 500);
    ASSERT_EQ(s.count, 100u);
    EXPECT_EQ(s.data[99].pc, 0x400000 + 999 * 4);
    s = trace->spanAt(1000, 500);
    ASSERT_EQ(s.count, 500u);
    EXPECT_EQ(s.data[0].pc, 0x400000 + 1000 * 4);

    // Past the end: empty.
    EXPECT_EQ(trace->spanAt(3'000, 10).count, 0u);
    EXPECT_EQ(trace->spanAt(99'999, 10).count, 0u);
}

TEST(BufferedTrace, CursorReplaysBitIdenticallyAndRewinds)
{
    const WorkloadProfile prof = WorkloadProfile::s1Leaf();
    SyntheticSearchTrace gen(prof, 4);
    const auto trace = BufferedTrace::materialize(gen, 20'000, 1 << 12);
    ASSERT_EQ(trace->size(), 20'000u);

    // A fresh source with the same seed produces the same records the
    // buffer captured.
    SyntheticSearchTrace fresh(prof, 4);
    std::vector<TraceRecord> expect(20'000);
    for (size_t filled = 0; filled < expect.size();)
        filled += fresh.fill(expect.data() + filled,
                             expect.size() - filled);

    BufferedTrace::Cursor cur(trace);
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<TraceRecord> got(expect.size());
        size_t filled = 0;
        // Odd fill size to exercise span-copy stitching.
        while (filled < got.size()) {
            const size_t n = cur.fill(
                got.data() + filled,
                std::min<size_t>(777, got.size() - filled));
            if (n == 0)
                break;
            filled += n;
        }
        ASSERT_EQ(filled, expect.size());
        for (size_t i = 0; i < expect.size(); ++i) {
            ASSERT_EQ(got[i].pc, expect[i].pc) << "record " << i;
            ASSERT_EQ(got[i].addr, expect[i].addr) << "record " << i;
            ASSERT_EQ(got[i].tid, expect[i].tid) << "record " << i;
            ASSERT_EQ(got[i].op, expect[i].op) << "record " << i;
            ASSERT_EQ(got[i].kind, expect[i].kind) << "record " << i;
            ASSERT_EQ(got[i].branch, expect[i].branch)
                << "record " << i;
        }
        EXPECT_EQ(cur.fill(got.data(), 1), 0u); // exhausted
        cur.reset();
    }
}

} // namespace
} // namespace wsearch
