#include <gtest/gtest.h>

#include <cstdio>

#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace wsearch {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "wsearch_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

WorkloadProfile
tinyProfile()
{
    WorkloadProfile p = WorkloadProfile::s1Leaf();
    p.code.footprintBytes = 64 * KiB;
    p.heapWorkingSetBytes = 1 * MiB;
    p.shardSpanBytes = 64 * MiB;
    return p;
}

TEST_F(TraceFileTest, RoundTripExact)
{
    SyntheticSearchTrace src(tinyProfile(), 2);
    std::vector<TraceRecord> orig(10000);
    src.fill(orig.data(), orig.size());

    {
        TraceFileWriter w(path_, 2);
        ASSERT_TRUE(w.ok());
        w.append(orig.data(), orig.size());
        EXPECT_EQ(w.close(), orig.size());
    }

    TraceFileReader r(path_);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.recordCount(), orig.size());
    EXPECT_EQ(r.numThreads(), 2u);
    std::vector<TraceRecord> back(orig.size());
    size_t got = 0;
    while (got < back.size())
        got += r.fill(back.data() + got, back.size() - got);
    for (size_t i = 0; i < orig.size(); ++i) {
        ASSERT_EQ(back[i].pc, orig[i].pc) << i;
        ASSERT_EQ(back[i].addr, orig[i].addr);
        ASSERT_EQ(back[i].target, orig[i].target);
        ASSERT_EQ(back[i].tid, orig[i].tid);
        ASSERT_EQ(back[i].kind, orig[i].kind);
        ASSERT_EQ(back[i].op, orig[i].op);
        ASSERT_EQ(back[i].branch, orig[i].branch);
    }
}

TEST_F(TraceFileTest, CaptureFromSource)
{
    SyntheticSearchTrace src(tinyProfile(), 1);
    TraceFileWriter w(path_, 1);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.captureFrom(src, 5000), 5000u);
    w.close();
    TraceFileReader r(path_);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.recordCount(), 5000u);
}

TEST_F(TraceFileTest, ReaderExhaustsThenResets)
{
    {
        SyntheticSearchTrace src(tinyProfile(), 1);
        TraceFileWriter w(path_, 1);
        w.captureFrom(src, 100);
    }
    TraceFileReader r(path_);
    TraceRecord buf[64];
    size_t total = 0, got = 0;
    while ((got = r.fill(buf, 64)) > 0)
        total += got;
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(r.fill(buf, 64), 0u);
    r.reset();
    EXPECT_EQ(r.fill(buf, 64), 64u);
}

TEST_F(TraceFileTest, ReplayEqualsLiveSource)
{
    // Capturing and replaying must be bit-identical to the live
    // stream -- the property that makes traces reusable artifacts.
    SyntheticSearchTrace live(tinyProfile(), 4);
    {
        SyntheticSearchTrace src(tinyProfile(), 4);
        TraceFileWriter w(path_, 4);
        w.captureFrom(src, 20000);
    }
    TraceFileReader replay(path_);
    TraceRecord a[512], b[512];
    for (int chunk = 0; chunk < 39; ++chunk) {
        live.fill(a, 512);
        ASSERT_EQ(replay.fill(b, 512), 512u);
        for (int i = 0; i < 512; ++i) {
            ASSERT_EQ(a[i].pc, b[i].pc);
            ASSERT_EQ(a[i].addr, b[i].addr);
        }
    }
}

TEST_F(TraceFileTest, RejectsBadMagic)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "not a trace file";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    TraceFileReader r(path_);
    EXPECT_FALSE(r.ok());
}

TEST_F(TraceFileTest, MissingFileFailsGracefully)
{
    TraceFileReader r("/nonexistent/path/trace.bin");
    EXPECT_FALSE(r.ok());
    TraceRecord buf[4];
    EXPECT_EQ(r.fill(buf, 4), 0u);
}

} // namespace
} // namespace wsearch
