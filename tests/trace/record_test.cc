#include <gtest/gtest.h>

#include "trace/record.hh"

namespace wsearch {
namespace {

TEST(TraceRecord, DefaultsAreInert)
{
    const TraceRecord r;
    EXPECT_FALSE(r.isBranch());
    EXPECT_FALSE(r.isTaken());
    EXPECT_FALSE(r.hasData());
    EXPECT_FALSE(r.isStore());
}

TEST(TraceRecord, BranchHelpers)
{
    TraceRecord r;
    r.branch = BranchKind::NotTaken;
    EXPECT_TRUE(r.isBranch());
    EXPECT_FALSE(r.isTaken());
    r.branch = BranchKind::Taken;
    EXPECT_TRUE(r.isTaken());
}

TEST(TraceRecord, DataHelpers)
{
    TraceRecord r;
    r.op = MemOp::Load;
    EXPECT_TRUE(r.hasData());
    EXPECT_FALSE(r.isStore());
    r.op = MemOp::Store;
    EXPECT_TRUE(r.isStore());
}

TEST(VaddrLayout, SegmentsAreDisjointAndOrdered)
{
    EXPECT_LT(vaddr::kCodeBase, vaddr::kHeapBase);
    EXPECT_LT(vaddr::kHeapBase, vaddr::kShardBase);
    EXPECT_LT(vaddr::kShardBase, vaddr::kStackBase);
    // Stack strides never collide across 64K threads.
    EXPECT_GE(vaddr::kStackStride * 65536,
              vaddr::kStackStride); // no overflow
}

} // namespace
} // namespace wsearch
