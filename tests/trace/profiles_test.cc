#include <gtest/gtest.h>

#include <vector>

#include "trace/profile.hh"
#include "util/units.hh"

namespace wsearch {
namespace {

std::vector<WorkloadProfile>
allProfiles()
{
    return {
        WorkloadProfile::s1Leaf(),
        WorkloadProfile::s2Leaf(),
        WorkloadProfile::s3Leaf(),
        WorkloadProfile::s1Root(),
        WorkloadProfile::s2Root(),
        WorkloadProfile::s3Root(),
        WorkloadProfile::specPerlbench(),
        WorkloadProfile::specMcf(),
        WorkloadProfile::specGobmk(),
        WorkloadProfile::specOmnetpp(),
        WorkloadProfile::cloudsuiteWebSearch(),
    };
}

TEST(Profiles, AllWellFormed)
{
    for (const auto &p : allProfiles()) {
        SCOPED_TRACE(p.name);
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.loadFrac, 0.0);
        EXPECT_LT(p.loadFrac + p.storeFrac, 1.0);
        EXPECT_LE(p.heapFrac + p.shardFrac + p.stackFrac, 1.0 + 1e-9);
        EXPECT_GT(p.heapWorkingSetBytes, 0u);
        EXPECT_GT(p.code.footprintBytes, 0u);
        EXPECT_GT(p.code.functionBytes, 0u);
        EXPECT_GT(p.cpu.postL2Exposure, 0.0);
        EXPECT_LE(p.cpu.postL2Exposure, 1.0);
    }
}

TEST(Profiles, UniqueNamesAndSeeds)
{
    const auto profiles = allProfiles();
    for (size_t i = 0; i < profiles.size(); ++i) {
        for (size_t j = i + 1; j < profiles.size(); ++j) {
            EXPECT_NE(profiles[i].name, profiles[j].name);
            EXPECT_NE(profiles[i].seed, profiles[j].seed);
        }
    }
}

TEST(Profiles, SearchHasLargeCodeFootprint)
{
    // The paper's central contrast: production search code overflows
    // private L2 caches (multi-MiB); SPEC and CloudSuite do not.
    EXPECT_GE(WorkloadProfile::s1Leaf().code.footprintBytes, 4 * MiB);
    EXPECT_LT(WorkloadProfile::specMcf().code.footprintBytes, 256 * KiB);
    EXPECT_LT(WorkloadProfile::cloudsuiteWebSearch().code.footprintBytes,
              256 * KiB);
}

TEST(Profiles, LeafHasShardRootDoesNot)
{
    EXPECT_GT(WorkloadProfile::s1Leaf().shardFrac, 0.0);
    EXPECT_EQ(WorkloadProfile::s1Root().shardFrac, 0.0);
}

TEST(Profiles, HeapWorkingSetOrdering)
{
    // mcf and omnetpp model huge, low-locality heaps; search heap is
    // ~1 GiB; CloudSuite is tens of MiB.
    EXPECT_GE(WorkloadProfile::specMcf().heapWorkingSetBytes, 2 * GiB);
    EXPECT_EQ(WorkloadProfile::s1Leaf().heapWorkingSetBytes, 1 * GiB);
    EXPECT_LE(WorkloadProfile::cloudsuiteWebSearch().heapWorkingSetBytes,
              64 * MiB);
}

} // namespace
} // namespace wsearch
