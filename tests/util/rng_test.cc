#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace wsearch {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU64() == b.nextU64())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng r(99);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeBounds)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextRange(17), 17u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng r(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoolProbability)
{
    Rng r(11);
    int count = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.nextBool(0.3))
            ++count;
    EXPECT_NEAR(static_cast<double>(count) / n, 0.3, 0.01);
}

TEST(Rng, Mix64ChangesValue)
{
    EXPECT_NE(mix64(0), 0u);
    EXPECT_NE(mix64(1), mix64(2));
}

} // namespace
} // namespace wsearch
