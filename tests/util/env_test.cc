#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hh"

namespace wsearch {
namespace {

TEST(Env, FallbackWhenUnset)
{
    unsetenv("WSEARCH_TEST_VAR");
    EXPECT_EQ(envU64("WSEARCH_TEST_VAR", 77), 77u);
}

TEST(Env, ParsesValue)
{
    setenv("WSEARCH_TEST_VAR", "1234", 1);
    EXPECT_EQ(envU64("WSEARCH_TEST_VAR", 0), 1234u);
    unsetenv("WSEARCH_TEST_VAR");
}

TEST(Env, InvalidFallsBack)
{
    setenv("WSEARCH_TEST_VAR", "abc", 1);
    EXPECT_EQ(envU64("WSEARCH_TEST_VAR", 9), 9u);
    unsetenv("WSEARCH_TEST_VAR");
}

TEST(Env, TraceBudgetFastMode)
{
    unsetenv("WSEARCH_RECORDS");
    setenv("WSEARCH_FAST", "1", 1);
    EXPECT_EQ(traceBudget(8000), 1000u);
    unsetenv("WSEARCH_FAST");
    EXPECT_EQ(traceBudget(8000), 8000u);
}

TEST(Env, TraceBudgetOverride)
{
    setenv("WSEARCH_RECORDS", "555", 1);
    EXPECT_EQ(traceBudget(8000), 555u);
    unsetenv("WSEARCH_RECORDS");
}

} // namespace
} // namespace wsearch
