#include <gtest/gtest.h>

#include "util/units.hh"

namespace wsearch {
namespace {

TEST(Units, Constants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024ull * 1024 * 1024);
}

TEST(Units, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Units, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(1ull << 33), 33u);
}

TEST(Units, AlignDownUp)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(0, 64), 0u);
}

TEST(Units, NextPow2)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(1024), 1024u);
    EXPECT_EQ(nextPow2(1025), 2048u);
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 100), 1u);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(45 * MiB), "45 MiB");
    EXPECT_EQ(formatBytes(GiB), "1 GiB");
    EXPECT_EQ(formatBytes(GiB + GiB / 2), "1.50 GiB");
    EXPECT_EQ(formatBytes(2 * KiB), "2 KiB");
}

} // namespace
} // namespace wsearch
