#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "util/zipf.hh"

namespace wsearch {
namespace {

TEST(Zipf, InRange)
{
    ZipfSampler z(1000, 0.9);
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        EXPECT_LT(z.sample(rng), 1000u);
}

TEST(Zipf, SingleItem)
{
    ZipfSampler z(1, 0.9);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(rng), 0u);
}

// With theta ~1, rank 0 should receive roughly 1/H_n of the mass.
TEST(Zipf, HeadFrequencyMatchesTheory)
{
    const uint64_t n = 1000;
    const double theta = 1.0;
    ZipfSampler z(n, theta);
    Rng rng(2);
    const int samples = 500000;
    int head = 0;
    for (int i = 0; i < samples; ++i)
        if (z.sample(rng) == 0)
            ++head;
    double harmonic = 0;
    for (uint64_t k = 1; k <= n; ++k)
        harmonic += 1.0 / static_cast<double>(k);
    const double expected = 1.0 / harmonic;
    EXPECT_NEAR(static_cast<double>(head) / samples, expected,
                expected * 0.08);
}

// Frequencies must be monotonically non-increasing in rank.
TEST(Zipf, MonotoneRankFrequencies)
{
    ZipfSampler z(64, 0.8);
    Rng rng(3);
    std::vector<int> counts(64, 0);
    for (int i = 0; i < 2000000; ++i)
        ++counts[z.sample(rng)];
    // Compare coarse buckets to tolerate sampling noise.
    int prev = counts[0] + counts[1] + counts[2] + counts[3];
    for (int b = 1; b < 16; ++b) {
        int cur = 0;
        for (int i = 0; i < 4; ++i)
            cur += counts[b * 4 + i];
        EXPECT_LE(cur, prev * 1.05);
        prev = cur;
    }
}

// Ratio of P(rank 1)/P(rank 2) should approximate 2^theta.
TEST(Zipf, PowerLawRatio)
{
    const double theta = 0.7;
    ZipfSampler z(10000, theta);
    Rng rng(4);
    int c1 = 0, c2 = 0;
    for (int i = 0; i < 2000000; ++i) {
        const uint64_t s = z.sample(rng);
        if (s == 0)
            ++c1;
        else if (s == 1)
            ++c2;
    }
    const double ratio = static_cast<double>(c1) / c2;
    EXPECT_NEAR(ratio, std::pow(2.0, theta), 0.12);
}

// Larger theta concentrates more mass in the head.
TEST(Zipf, ThetaControlsSkew)
{
    Rng rng(5);
    auto head_mass = [&rng](double theta) {
        ZipfSampler z(100000, theta);
        int head = 0;
        const int n = 300000;
        for (int i = 0; i < n; ++i)
            if (z.sample(rng) < 100)
                ++head;
        return static_cast<double>(head) / n;
    };
    const double low = head_mass(0.5);
    const double high = head_mass(1.2);
    EXPECT_GT(high, low * 2);
}

class ZipfSweep : public ::testing::TestWithParam<double>
{
};

// Property: every theta produces in-range samples and a head-heavy
// distribution.
TEST_P(ZipfSweep, HeadHeavierThanTail)
{
    const double theta = GetParam();
    ZipfSampler z(4096, theta);
    Rng rng(6);
    uint64_t head = 0, tail = 0;
    for (int i = 0; i < 200000; ++i) {
        const uint64_t s = z.sample(rng);
        ASSERT_LT(s, 4096u);
        if (s < 2048)
            ++head;
        else
            ++tail;
    }
    EXPECT_GT(head, tail);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 0.99, 1.0,
                                           1.01, 1.5, 2.0));

} // namespace
} // namespace wsearch
