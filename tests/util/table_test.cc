#include <gtest/gtest.h>

#include "util/table.hh"

namespace wsearch {
namespace {

TEST(Table, RendersMarkdown)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| longer"), std::string::npos);
    EXPECT_NE(s.find("|--"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, ColumnsAligned)
{
    Table t({"a", "b"});
    t.addRow({"xxxx", "y"});
    const std::string s = t.toString();
    // Every line should have the same length.
    size_t first_len = s.find('\n');
    size_t pos = first_len + 1;
    while (pos < s.size()) {
        const size_t next = s.find('\n', pos);
        ASSERT_NE(next, std::string::npos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table t({"name", "value"});
    t.addRow({"a,b", "say \"hi\""});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_EQ(csv.find('|'), std::string::npos);
}

TEST(Table, CsvPlainRows)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(1.5, 0), "2");
    EXPECT_EQ(Table::fmtPct(0.273, 1), "27.3%");
    EXPECT_EQ(Table::fmtInt(123456), "123456");
}

} // namespace
} // namespace wsearch
