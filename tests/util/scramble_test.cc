#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/scramble.hh"

namespace wsearch {
namespace {

TEST(BitMixPermutation, IsBijective)
{
    BitMixPermutation p(12, 7);
    std::vector<bool> seen(1 << 12, false);
    for (uint64_t x = 0; x < (1 << 12); ++x) {
        const uint64_t y = p.apply(x);
        ASSERT_LT(y, uint64_t(1) << 12);
        ASSERT_FALSE(seen[y]) << "collision at " << x;
        seen[y] = true;
    }
}

TEST(BitMixPermutation, SaltChangesMapping)
{
    BitMixPermutation a(16, 1), b(16, 2);
    int same = 0;
    for (uint64_t x = 0; x < 1000; ++x)
        if (a.apply(x) == b.apply(x))
            ++same;
    EXPECT_LT(same, 10);
}

TEST(BitMixPermutation, ScattersConsecutiveInputs)
{
    // Consecutive ranks should not map to consecutive outputs.
    BitMixPermutation p(20, 3);
    int adjacent = 0;
    for (uint64_t x = 0; x + 1 < 1000; ++x) {
        const int64_t d = static_cast<int64_t>(p.apply(x + 1)) -
            static_cast<int64_t>(p.apply(x));
        if (d == 1 || d == -1)
            ++adjacent;
    }
    EXPECT_LT(adjacent, 5);
}

TEST(DomainScrambler, BijectiveOnArbitraryDomain)
{
    const uint64_t n = 1000; // not a power of two
    DomainScrambler s(n, 9);
    std::vector<bool> seen(n, false);
    for (uint64_t x = 0; x < n; ++x) {
        const uint64_t y = s.apply(x);
        ASSERT_LT(y, n);
        ASSERT_FALSE(seen[y]);
        seen[y] = true;
    }
}

TEST(DomainScrambler, TinyDomains)
{
    for (uint64_t n = 1; n <= 5; ++n) {
        DomainScrambler s(n, n);
        std::set<uint64_t> out;
        for (uint64_t x = 0; x < n; ++x)
            out.insert(s.apply(x));
        EXPECT_EQ(out.size(), n);
    }
}

TEST(DomainScrambler, Deterministic)
{
    DomainScrambler a(12345, 42), b(12345, 42);
    for (uint64_t x = 0; x < 12345; x += 17)
        EXPECT_EQ(a.apply(x), b.apply(x));
}

} // namespace
} // namespace wsearch
